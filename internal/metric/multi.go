package metric

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the tiled multi-query kernel layer: distances from a
// *block* of queries to a *block* of points, written into a row-major tile.
// This is the BF(Q,X) matrix-matrix shape of the paper's §3 — the form in
// which the brute-force primitive amortizes memory traffic across queries
// and keeps the inner loop FMA-shaped.
//
// # Ordering distances
//
// All kernels in this layer emit *ordering distances*: a monotone surrogate
// of the true distance that is cheaper to compute in the inner loop.
// For Euclidean the ordering distance is the squared distance (the sqrt is
// deferred to the API boundary); for Minkowski it is the p-th power sum;
// for Manhattan, Chebyshev and generic metrics it is the distance itself.
// Metrics with a non-identity surrogate implement Orderer; ToDistance /
// FromDistance convert at the boundary. Because the surrogate is strictly
// monotone, comparisons, top-k selection and tie-breaking (toward lower
// ids) in ordering space agree exactly with distance space.
//
// # Kernel grades
//
// A Kernel resolves a metric's tile implementation once. Four grades
// exist, ordered by how much reproducibility they trade for speed:
//
//   - NewKernel (exact): per-pair arithmetic is bit-identical to the
//     single-query Batch/OrderingBatch path, so results are reproducible
//     against the per-query reference down to the last bit, including ties.
//     Euclidean uses a cache-blocked difference kernel over pre-widened
//     float64 tiles (widening is exact, so bits are unchanged).
//   - NewFastKernel (Gram-fast): float64 throughout, but Euclidean uses
//     the Gram decomposition ‖q−x‖² = ‖q‖² + ‖x‖² − 2·q·x over precomputed
//     squared norms, which reassociates the summation: results can differ
//     from the exact kernel in the trailing ulps (never in ordering-space
//     tie handling for bit-identical rows, e.g. duplicate points). The fast
//     kernel is itself tile-shape stable: any tiling of the same (Q, X)
//     yields bit-identical values.
//   - NewChunkedKernel (chunked-fast): Euclidean runs the whole inner loop
//     in float32 — at most 2^11 products accumulate in float32 lanes
//     before folding into a float64 total — so it is conversion-free and
//     vectorizable, roughly doubling row-scan throughput. Values differ
//     from the exact kernel by a bounded RELATIVE error (ChunkedErrorBound,
//     ≈1e-5 at 2^11 dims), far more than the Gram grade's ulp drift; see
//     chunked.go for the bound, the overflow caveat and the tile-shape
//     stability guarantee.
//   - NewQuantizedKernel (quantized): Euclidean scans int8 codes from a
//     prebuilt QuantizedView — 1 byte per coordinate instead of 4, an
//     integer multiply-accumulate inner loop, and an ADDITIVE error bound
//     (QuantErrorBound) instead of a relative one. Built for the
//     memory-bound regime (n ≫ cache); candidate distances are
//     approximate and consumers restore exactness by rescoring with an
//     exact kernel. See quant.go.
//
// All fast grades report IsFast() == true. Consumers whose outputs are
// reported answers under a bit-reproducibility contract (core.Exact
// phase 2, the distributed shard scans, range searches) must use the
// exact grade and guard with !IsFast(); consumers that only need a
// monotone-enough ordering (probe selection, candidate generation and
// rescoring in approximate backends, brute-force baselines that tolerate
// documented error) may use either fast grade.

// BatchMulti is the multi-query vector fast path: ordering distances from
// every query in qflat (nq = len(qflat)/dim rows) to every point in pflat
// (np = len(pflat)/dim rows), written to out as a row-major nq×np tile:
// out[i*np+j] holds the ordering distance from query i to point j.
type BatchMulti interface {
	MultiDistances(qflat, pflat []float32, dim int, out []float64)
}

// Orderer is implemented by metrics whose kernels emit a monotone surrogate
// of the true distance. ToDistance(FromDistance(d)) == d need not hold
// bitwise; only strict monotonicity on [0, ∞) is required.
type Orderer interface {
	// ToDistance converts an ordering distance to the true distance.
	ToDistance(o float64) float64
	// FromDistance converts a true distance to an ordering distance.
	FromDistance(d float64) float64
}

// OrderingBatch is the single-query ordering-space companion of Batch:
// identical per-pair arithmetic to Distances with the final ToDistance
// step omitted.
type OrderingBatch interface {
	OrderingDistances(q, flat []float32, dim int, out []float64)
}

// ToDistance converts an ordering distance emitted by m's kernels to the
// true distance (identity for metrics without an Orderer).
func ToDistance(m Metric[[]float32], o float64) float64 {
	if ord, ok := m.(Orderer); ok {
		return ord.ToDistance(o)
	}
	return o
}

// FromDistance converts a true distance to m's ordering space.
func FromDistance(m Metric[[]float32], d float64) float64 {
	if ord, ok := m.(Orderer); ok {
		return ord.FromDistance(d)
	}
	return d
}

// tileInvocations counts Kernel.Tile calls process-wide. Tests use it to
// verify that batch search paths actually route through the tiled kernels.
var tileInvocations atomic.Int64

// TileInvocations reports the total number of Kernel.Tile calls made by
// the process so far. Intended for tests and diagnostics.
func TileInvocations() int64 { return tileInvocations.Load() }

// TileShape returns the query/point tile shape used by the tiled search
// loops for dimension dim at the compile-time default tile budget (the
// shape every prior release used). Search loops should prefer
// AutoTileShape, which measures the host once per process; TileShape
// remains for callers that need the fixed reference shape.
func TileShape(dim int) (tq, tp int) {
	return shapeForBudget(defaultTileBudget, dim)
}

// shapeForBudget sizes the query/point tile for dimension dim against a
// per-tile footprint budget of roughly `budget` float32 elements, so the
// widened tiles and the ordering tile stay cache-resident. With
// budget = defaultTileBudget this reproduces the historical TileShape
// exactly.
func shapeForBudget(budget, dim int) (tq, tp int) {
	tq = 32
	for tq > 4 && tq*dim > budget {
		tq >>= 1
	}
	tp = budget / dim
	if tp > 512 {
		tp = 512
	}
	if tp < 16 {
		tp = 16
	}
	return tq, tp
}

// TileScratch holds a kernel's reusable buffers (widened tiles, norm
// vectors) so steady-state tiled search performs no per-tile allocation.
// Acquire with GetTileScratch, release with PutTileScratch.
type TileScratch struct {
	wq, wp []float64
	qn, pn []float64
	qc     []int8 // quantized query codes (quantized grade only)
}

var tileScratchPool = sync.Pool{New: func() any { return new(TileScratch) }}

// GetTileScratch returns a pooled TileScratch.
func GetTileScratch() *TileScratch { return tileScratchPool.Get().(*TileScratch) }

// PutTileScratch returns ts to the pool.
func PutTileScratch(ts *TileScratch) { tileScratchPool.Put(ts) }

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Grade identifies a kernel's arithmetic grade; see the package comment
// for the three grades and their reproducibility contracts.
type Grade uint8

const (
	// GradeExact is bit-identical to the per-query reference.
	GradeExact Grade = iota
	// GradeFast is the float64 Gram decomposition (ulp-level drift).
	GradeFast
	// GradeChunked is chunked float32 accumulation (bounded relative
	// error, ChunkedErrorBound).
	GradeChunked
	// GradeQuantized is int8 scalar quantization with integer
	// multiply-accumulate (bounded additive error, QuantErrorBound).
	GradeQuantized
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case GradeExact:
		return "exact"
	case GradeFast:
		return "fast"
	case GradeChunked:
		return "chunked"
	case GradeQuantized:
		return "quantized"
	}
	return "unknown"
}

// Kernel binds a metric to its resolved tile implementation and ordering
// conversions. Construct once (per index or per batch call) and reuse.
type Kernel struct {
	m       Metric[[]float32]
	fast    bool
	chunked bool
	quant   bool
	qv      *QuantizedView // prebuilt codes (quantized grade; may be nil)
	euclid  bool
	bm      BatchMulti
	ob      OrderingBatch
	b       Batch
	ord     Orderer
}

// NewKernel returns the exact-mode kernel for m: tiled, but bit-identical
// to the per-query reference path.
func NewKernel(m Metric[[]float32]) *Kernel { return newKernel(m, false, false) }

// NewFastKernel returns the Gram-fast kernel for m: the quickest float64
// tile implementation (the Gram kernel for Euclidean). Values may differ
// from the exact kernel in the last ulps; see the package comment.
func NewFastKernel(m Metric[[]float32]) *Kernel { return newKernel(m, true, false) }

// NewChunkedKernel returns the chunked-fast kernel for m: float32 inner
// loops with per-chunk float64 folds for Euclidean (bounded relative
// error, see ChunkedErrorBound); metrics without a chunked implementation
// behave exactly like their NewFastKernel form.
func NewChunkedKernel(m Metric[[]float32]) *Kernel { return newKernel(m, true, true) }

// NewQuantizedKernel returns the quantized-grade kernel for m bound to a
// prebuilt view (built once over the point matrix the kernel will scan).
// Tile and Ordering recognize whole-row sub-blocks of the view's source
// buffer and score them from the int8 codes; any other point block is
// quantized on the fly (correct, but it pays the O(rows·dim) view build
// per call). v may be nil, in which case every call takes the on-the-fly
// path. Metrics without a quantized implementation (non-Euclidean)
// behave exactly like their NewFastKernel form.
func NewQuantizedKernel(m Metric[[]float32], v *QuantizedView) *Kernel {
	k := newKernel(m, true, false)
	k.quant = true
	k.qv = v
	return k
}

// NewGradeKernel returns the kernel for m at the requested grade. The
// quantized grade is returned without a prebuilt view (see
// NewQuantizedKernel for the viewless cost model).
func NewGradeKernel(m Metric[[]float32], g Grade) *Kernel {
	switch g {
	case GradeFast:
		return NewFastKernel(m)
	case GradeChunked:
		return NewChunkedKernel(m)
	case GradeQuantized:
		return NewQuantizedKernel(m, nil)
	default:
		return NewKernel(m)
	}
}

func newKernel(m Metric[[]float32], fast, chunked bool) *Kernel {
	k := &Kernel{m: m, fast: fast, chunked: chunked}
	_, k.euclid = m.(Euclidean)
	k.bm, _ = m.(BatchMulti)
	k.ob, _ = m.(OrderingBatch)
	k.b, _ = m.(Batch)
	k.ord, _ = m.(Orderer)
	return k
}

// Metric returns the underlying metric.
func (k *Kernel) Metric() Metric[[]float32] { return k.m }

// IsFast reports whether the kernel was constructed with NewFastKernel or
// NewChunkedKernel. Fast-grade values may differ from the per-query
// reference (trailing ulps for the Gram grade, ChunkedErrorBound for the
// chunked grade); callers whose results must stay bit-identical to the
// reference (Exact phase 2, the distributed shard scans) assert
// !IsFast().
func (k *Kernel) IsFast() bool { return k.fast }

// Grade reports the kernel's arithmetic grade.
func (k *Kernel) Grade() Grade {
	switch {
	case k.quant:
		return GradeQuantized
	case k.chunked:
		return GradeChunked
	case k.fast:
		return GradeFast
	}
	return GradeExact
}

// View returns the kernel's prebuilt quantized view, or nil.
func (k *Kernel) View() *QuantizedView { return k.qv }

// ToDistance converts an ordering distance to the true distance.
func (k *Kernel) ToDistance(o float64) float64 {
	if k.ord != nil {
		return k.ord.ToDistance(o)
	}
	return o
}

// FromDistance converts a true distance to the ordering space.
func (k *Kernel) FromDistance(d float64) float64 {
	if k.ord != nil {
		return k.ord.FromDistance(d)
	}
	return d
}

// OrderingBound returns a prefilter bound B guaranteeing that every
// ordering o with ToDistance(o) <= d satisfies o <= B, so range scans can
// reject candidates in ordering space without losing boundary points.
// Identity orderings bound exactly; Euclidean one ulp above d² (sqrt is
// correctly rounded, so no squared value at or below distance d can exceed
// it); orderings built on math.Pow are not correctly rounded, so no finite
// bound is safe and every candidate must be confirmed via ToDistance. The
// chunked grade's orderings drift by ChunkedErrorBound rather than an ulp,
// so no finite one-ulp bound is safe there either — range consumers stay
// on the exact grade.
func (k *Kernel) OrderingBound(d float64) float64 {
	switch {
	case k.ord == nil:
		return d
	case k.euclid && !k.chunked && !k.quant:
		return math.Nextafter(d*d, math.Inf(1))
	default:
		return math.Inf(1)
	}
}

// GramOrderingSlack bounds |gram − exact| for the squared-distance
// ordering of one query/point pair computed by the Gram fast path
// (gramFinish over euclidNorms and the two-lane dot), given the exact
// squared norms qn and pn of the two vectors.
//
// Derivation: each of the three accumulations (‖q‖², ‖p‖², q·p) is a
// length-dim sum of products of exact float64 values (float32 inputs
// widen exactly), so standard forward error analysis gives a relative
// error of at most (dim+1)·u per term magnitude, u = 2⁻⁵³. Term
// magnitudes are bounded by qn, pn, and √(qn·pn) ≤ (qn+pn)/2
// respectively, and the final qn+pn−2·dot assembly adds three more
// rounding steps on values bounded by 2(qn+pn). Collecting:
//
//	|gram − exact| ≤ u·(qn+pn)·(1.5·dim + 18)
//
// The returned bound 4·(dim+8)·u·(qn+pn) dominates that with ≥2×
// margin for every dim ≥ 1, absorbing the exact-grade kernel's own
// (smaller, same-form) rounding. Callers bracket the fast ordering as
// [o−slack, o+slack] to make prune/seed decisions that provably agree
// with the exact kernel; distances reported to users must still come
// from the exact grade.
func GramOrderingSlack(dim int, qn, pn float64) float64 {
	const u = 0x1p-53
	return 4 * float64(dim+8) * u * (qn + pn)
}

// NeedsNorms reports whether Tile consumes precomputed squared norms
// (the Gram fast path; the chunked and quantized grades read their own
// representations directly and have no use for norms). Callers that hold
// a dataset across many searches should precompute them once with Norms
// and pass them to every Tile call.
func (k *Kernel) NeedsNorms() bool { return k.fast && k.euclid && !k.chunked && !k.quant }

// Norms fills dst (grown as needed) with the per-row squared l2 norms of
// flat and returns it. It returns nil when the kernel has no use for norms,
// so callers can pass the result straight back to Tile.
func (k *Kernel) Norms(flat []float32, dim int, dst []float64) []float64 {
	if !k.NeedsNorms() {
		return nil
	}
	n := len(flat) / dim
	dst = growF64(dst, n)
	euclidNorms(flat, dim, dst)
	return dst
}

// Tile computes the ordering-distance tile from the queries in qflat to
// the points in pflat: out[i*np+j] = ordering distance from query i to
// point j, with nq = len(qflat)/dim and np = len(pflat)/dim and
// len(out) = nq*np. qn and pn are optional precomputed squared norms
// (used only when NeedsNorms reports true; computed on the fly if nil).
// ts supplies reusable buffers; pass nil for one-off calls.
func (k *Kernel) Tile(qflat []float32, qn []float64, pflat []float32, pn []float64, dim int, out []float64, ts *TileScratch) {
	tileInvocations.Add(1)
	nq := len(qflat) / dim
	np := len(pflat) / dim
	if nq == 0 || np == 0 {
		return
	}
	switch {
	case k.euclid && k.quant:
		// Quantized tile: int8 codes, integer MAC. Sub-blocks of the
		// prebuilt view's source score from the stored codes; other point
		// blocks are quantized on the fly (see quant.go).
		k.quantTile(qflat, pflat, dim, nq, np, out, ts)
	case k.euclid && k.chunked:
		// Chunked float32 tile: consumes the float32 rows in place — no
		// widening, no norms, no scratch. Per-pair arithmetic is shared
		// with the chunked row kernel (tile-shape stable; see chunked.go).
		euclidChunkedTile(qflat, pflat, dim, nq, np, out)
	case k.euclid && k.fast:
		if ts == nil {
			ts = GetTileScratch()
			defer PutTileScratch(ts)
		}
		if qn == nil {
			ts.qn = growF64(ts.qn, nq)
			euclidNorms(qflat, dim, ts.qn)
			qn = ts.qn
		}
		if pn == nil {
			ts.pn = growF64(ts.pn, np)
			euclidNorms(pflat, dim, ts.pn)
			pn = ts.pn
		}
		if nq < 4 {
			for i := 0; i < nq; i++ {
				euclidGramRow(qflat[i*dim:(i+1)*dim], qn[i], pflat, pn, dim, out[i*np:(i+1)*np])
			}
			return
		}
		ts.wq = growF64(ts.wq, nq*dim)
		ts.wp = growF64(ts.wp, np*dim)
		widen(qflat, ts.wq)
		widen(pflat, ts.wp)
		euclidGramTile(ts.wq, qn, ts.wp, pn, dim, nq, np, out)
	case k.euclid:
		// The diff tile is bit-identical to the row path for any shape, so
		// the cutover is purely a performance choice: even two rows amortize
		// the one-time float64 widening of the point block (the row path
		// re-converts both operands for every pair).
		if nq < 2 {
			e := Euclidean{}
			for i := 0; i < nq; i++ {
				e.OrderingDistances(qflat[i*dim:(i+1)*dim], pflat, dim, out[i*np:(i+1)*np])
			}
			return
		}
		if ts == nil {
			ts = GetTileScratch()
			defer PutTileScratch(ts)
		}
		ts.wq = growF64(ts.wq, nq*dim)
		ts.wp = growF64(ts.wp, np*dim)
		widen(qflat, ts.wq)
		widen(pflat, ts.wp)
		euclidDiffTile(ts.wq, ts.wp, dim, nq, np, out)
	case k.bm != nil:
		k.bm.MultiDistances(qflat, pflat, dim, out)
	case k.ob != nil:
		for i := 0; i < nq; i++ {
			k.ob.OrderingDistances(qflat[i*dim:(i+1)*dim], pflat, dim, out[i*np:(i+1)*np])
		}
	case k.b != nil:
		for i := 0; i < nq; i++ {
			row := out[i*np : (i+1)*np]
			k.b.Distances(qflat[i*dim:(i+1)*dim], pflat, dim, row)
			if k.ord != nil {
				for j := range row {
					row[j] = k.ord.FromDistance(row[j])
				}
			}
		}
	default:
		for i := 0; i < nq; i++ {
			q := qflat[i*dim : (i+1)*dim]
			row := out[i*np : (i+1)*np]
			for j := 0; j < np; j++ {
				row[j] = k.FromDistance(k.m.Distance(q, pflat[j*dim:(j+1)*dim]))
			}
		}
	}
}

// Ordering computes single-query ordering distances from q to every point
// in flat — the streaming (matrix-vector) reference path. On the exact
// and Gram-fast grades its per-pair arithmetic is the float64 reference,
// bit-identical to the exact-mode Tile; on the chunked grade it is the
// chunked float32 row kernel, bit-identical to the chunked Tile (and
// within ChunkedErrorBound of the reference).
func (k *Kernel) Ordering(q, flat []float32, dim int, out []float64) {
	switch {
	case k.euclid && k.quant:
		k.quantOrdering(q, flat, dim, out)
	case k.euclid && k.chunked:
		euclidChunkedRow(q, flat, dim, out)
	case k.ob != nil:
		k.ob.OrderingDistances(q, flat, dim, out)
	case k.b != nil:
		k.b.Distances(q, flat, dim, out)
		if k.ord != nil {
			for i := range out {
				out[i] = k.ord.FromDistance(out[i])
			}
		}
	default:
		for i := range out {
			out[i] = k.FromDistance(k.m.Distance(q, flat[i*dim:(i+1)*dim]))
		}
	}
}

// widen converts a float32 row block to float64 (exactly — every float32
// is representable), so the inner tile loops run free of conversions.
func widen(src []float32, dst []float64) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// euclidNorms writes per-row squared norms of flat with the same two-lane
// accumulation structure as the Gram dot product, so that for bit-identical
// rows the Gram expansion cancels to exactly zero.
func euclidNorms(flat []float32, dim int, out []float64) {
	for i := range out {
		row := flat[i*dim : (i+1)*dim]
		var a, b float64
		j := 0
		for ; j+2 <= dim; j += 2 {
			x0 := float64(row[j])
			x1 := float64(row[j+1])
			a += x0 * x0
			b += x1 * x1
		}
		for ; j < dim; j++ {
			x := float64(row[j])
			a += x * x
		}
		out[i] = a + b
	}
}

// gramFinish assembles the squared distance from the Gram identity,
// clamping the catastrophic-cancellation underflow below zero.
func gramFinish(qn, pn, dot float64) float64 {
	o := qn + pn - 2*dot
	if o < 0 {
		return 0
	}
	return o
}

// euclidGramRow is the single-query Gram kernel reading float32 directly.
// Per-pair arithmetic (two-lane dot, gramFinish) is identical to the
// blocked tile kernel, so tiles of any shape agree bitwise.
func euclidGramRow(q []float32, qn float64, pflat []float32, pn []float64, dim int, out []float64) {
	for j := range out {
		row := pflat[j*dim : (j+1)*dim]
		var a, b float64
		d := 0
		for ; d+2 <= dim; d += 2 {
			a += float64(q[d]) * float64(row[d])
			b += float64(q[d+1]) * float64(row[d+1])
		}
		for ; d < dim; d++ {
			a += float64(q[d]) * float64(row[d])
		}
		out[j] = gramFinish(qn, pn[j], a+b)
	}
}

// euclidGramTile is the cache-blocked Gram kernel over widened tiles:
// each point row is streamed once per four point-columns and reused for
// every query row, so the inner loop is two ALU ops per pair-element.
func euclidGramTile(qw, qn, pw, pn []float64, dim, nq, np int, out []float64) {
	for i := 0; i < nq; i++ {
		qrow := qw[i*dim : (i+1)*dim]
		orow := out[i*np : (i+1)*np]
		qni := qn[i]
		j := 0
		for ; j+4 <= np; j += 4 {
			p0 := pw[(j+0)*dim : (j+1)*dim]
			p1 := pw[(j+1)*dim : (j+2)*dim]
			p2 := pw[(j+2)*dim : (j+3)*dim]
			p3 := pw[(j+3)*dim : (j+4)*dim]
			var a0, b0, a1, b1, a2, b2, a3, b3 float64
			d := 0
			for ; d+2 <= dim; d += 2 {
				x0 := qrow[d]
				x1 := qrow[d+1]
				a0 += x0 * p0[d]
				b0 += x1 * p0[d+1]
				a1 += x0 * p1[d]
				b1 += x1 * p1[d+1]
				a2 += x0 * p2[d]
				b2 += x1 * p2[d+1]
				a3 += x0 * p3[d]
				b3 += x1 * p3[d+1]
			}
			for ; d < dim; d++ {
				x := qrow[d]
				a0 += x * p0[d]
				a1 += x * p1[d]
				a2 += x * p2[d]
				a3 += x * p3[d]
			}
			orow[j] = gramFinish(qni, pn[j], a0+b0)
			orow[j+1] = gramFinish(qni, pn[j+1], a1+b1)
			orow[j+2] = gramFinish(qni, pn[j+2], a2+b2)
			orow[j+3] = gramFinish(qni, pn[j+3], a3+b3)
		}
		for ; j < np; j++ {
			prow := pw[j*dim : (j+1)*dim]
			var a, b float64
			d := 0
			for ; d+2 <= dim; d += 2 {
				a += qrow[d] * prow[d]
				b += qrow[d+1] * prow[d+1]
			}
			for ; d < dim; d++ {
				a += qrow[d] * prow[d]
			}
			orow[j] = gramFinish(qni, pn[j], a+b)
		}
	}
}

// euclidDiffTile is the exact-mode tiled kernel: the classic difference
// form over widened tiles, with the same four-lane accumulation as
// Euclidean.OrderingDistances so every pair is bit-identical to the
// per-query reference.
func euclidDiffTile(qw, pw []float64, dim, nq, np int, out []float64) {
	for i := 0; i < nq; i++ {
		qrow := qw[i*dim : (i+1)*dim]
		orow := out[i*np : (i+1)*np]
		for j := 0; j < np; j++ {
			prow := pw[j*dim : (j+1)*dim]
			var s0, s1, s2, s3 float64
			d := 0
			for ; d+4 <= dim; d += 4 {
				e0 := qrow[d] - prow[d]
				e1 := qrow[d+1] - prow[d+1]
				e2 := qrow[d+2] - prow[d+2]
				e3 := qrow[d+3] - prow[d+3]
				s0 += e0 * e0
				s1 += e1 * e1
				s2 += e2 * e2
				s3 += e3 * e3
			}
			for ; d < dim; d++ {
				e := qrow[d] - prow[d]
				s0 += e * e
			}
			orow[j] = s0 + s1 + s2 + s3
		}
	}
}
