#include "textflag.h"

// func chunkedBody4Asm(q, r0, r1, r2, r3 *float32, n int, lanes *[4][8]float32)
// Accumulates the 8-lane float32 sums of squared differences over the
// first n elements (n a multiple of 8) of q against each of r0..r3:
// lanes[t][l] = sum over j≡l (mod 8), j<n of (q[j]-rt[j])² accumulated in
// j order — the exact per-lane sequence of the scalar chunked loop. The
// query vector is loaded once per pass and shared by all four columns
// (the register-blocking win); VSUBPS/VMULPS/VADDPS are elementwise IEEE
// binary32, so every lane matches chunkedBodyGo bit for bit. No FMA: the
// scalar Go loop does not fuse either, and fusing here would change bits.
TEXT ·chunkedBody4Asm(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), SI
	MOVQ r0+8(FP), R9
	MOVQ r1+16(FP), R10
	MOVQ r2+24(FP), R11
	MOVQ r3+32(FP), R12
	MOVQ n+40(FP), BX
	MOVQ lanes+48(FP), DI
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	XORQ AX, AX
	TESTQ BX, BX
	JE   store

loop:
	VMOVUPS (SI)(AX*4), Y0
	VMOVUPS (R9)(AX*4), Y5
	VSUBPS  Y5, Y0, Y5
	VMULPS  Y5, Y5, Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS (R10)(AX*4), Y6
	VSUBPS  Y6, Y0, Y6
	VMULPS  Y6, Y6, Y6
	VADDPS  Y6, Y2, Y2
	VMOVUPS (R11)(AX*4), Y7
	VSUBPS  Y7, Y0, Y7
	VMULPS  Y7, Y7, Y7
	VADDPS  Y7, Y3, Y3
	VMOVUPS (R12)(AX*4), Y8
	VSUBPS  Y8, Y0, Y8
	VMULPS  Y8, Y8, Y8
	VADDPS  Y8, Y4, Y4
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop

store:
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	VZEROUPPER
	RET
