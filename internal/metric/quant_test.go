package metric

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"
)

// quantDims is the dimension grid the quantized property tests sweep:
// sub-alignment (1, 3), odd mid-size (17), the bench dimension (64),
// MNIST (784) and a multi-chunk size (4099 > 2^11) that exercises the
// per-chunk scale folding.
var quantDims = []int{1, 3, 17, 64, 784, 4099}

// TestQuantizedWithinErrorBound: across the dimension grid and
// adversarial magnitude mixes, the quantized distance must stay within
// the view's additive error bound of the exact distance for queries
// drawn from the data's envelope (here: queries are rows of the data).
func TestQuantizedWithinErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	exact := NewKernel(Euclidean{})
	scales := []struct {
		name string
		fill func(buf []float32)
	}{
		{"unit", func(buf []float32) {
			for i := range buf {
				buf[i] = rng.Float32()*4 - 2
			}
		}},
		{"tiny-1e-12", func(buf []float32) {
			for i := range buf {
				buf[i] = (rng.Float32()*4 - 2) * 1e-12
			}
		}},
		{"huge-1e12", func(buf []float32) {
			for i := range buf {
				buf[i] = (rng.Float32()*4 - 2) * 1e12
			}
		}},
		{"per-dim-magnitudes", func(buf []float32) {
			// Per-coordinate magnitude spread: each dimension gets its own
			// scale regime, stressing the shared per-chunk scale.
			for i := range buf {
				exp := (i % 7) - 3 // 1e-3 … 1e3 by dimension
				buf[i] = (rng.Float32()*4 - 2) * float32(math.Pow(10, float64(exp)))
			}
		}},
		{"offset-1e6", func(buf []float32) {
			for i := range buf {
				buf[i] = 1e6 + rng.Float32()
			}
		}},
	}
	for _, dim := range quantDims {
		for _, sc := range scales {
			np := 64
			pflat := make([]float32, np*dim)
			sc.fill(pflat)
			v := NewQuantizedView(pflat, dim)
			if v.ErrorBound() > QuantErrorBound(dim, v.MaxScale()) {
				t.Fatalf("dim=%d %s: view bound %v exceeds closed form %v",
					dim, sc.name, v.ErrorBound(), QuantErrorBound(dim, v.MaxScale()))
			}
			// Queries: rows of the data (guaranteed inside the envelope).
			var qc []int8
			got := make([]float64, np)
			want := make([]float64, np)
			for qi := 0; qi < np; qi += 7 {
				q := pflat[qi*dim : (qi+1)*dim]
				qc = v.QuantizeQuery(q, qc)
				v.OrderingRange(qc, 0, np, got)
				exact.Ordering(q, pflat, dim, want)
				for j := range want {
					de := math.Sqrt(want[j])
					dq := math.Sqrt(got[j])
					if err := math.Abs(de - dq); err > v.ErrorBound() {
						t.Fatalf("dim=%d %s q=%d p=%d: quant dist %v, exact %v, |err|=%v exceeds bound %v",
							dim, sc.name, qi, j, dq, de, err, v.ErrorBound())
					}
				}
			}
		}
	}
}

// TestQuantizedDuplicatesExactZero: identical rows quantize to identical
// codes, so the quantized ordering distance must be exactly zero and
// duplicates keep their razor-sharp ties.
func TestQuantizedDuplicatesExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for _, dim := range []int{1, 7, 64, 784} {
		np := 21
		pflat := randFlat(rng, np, dim)
		for i := range pflat {
			pflat[i] *= 1e4
		}
		q := make([]float32, dim)
		copy(q, pflat[13*dim:14*dim])
		v := NewQuantizedView(pflat, dim)
		qc := v.QuantizeQuery(q, nil)
		out := make([]float64, np)
		v.OrderingRange(qc, 0, np, out)
		if out[13] != 0 {
			t.Fatalf("dim=%d: duplicate row quantized distance %v, want exactly 0", dim, out[13])
		}
		for j, o := range out {
			if o < 0 || math.IsNaN(o) {
				t.Fatalf("dim=%d p=%d: quantized distance %v", dim, j, o)
			}
		}
	}
}

// TestQuantizedTileShapeInvariance: any tiling of the same (Q, X) over
// the view's source must give bit-identical values, Tile must agree with
// Ordering, and the viewless on-the-fly path must agree with the
// prebuilt-view path (same codes either way).
func TestQuantizedTileShapeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	for _, dim := range []int{3, 17, 64} {
		nq, np := 11, 41
		qflat := randFlat(rng, nq, dim)
		pflat := randFlat(rng, np, dim)
		copy(pflat[5*dim:6*dim], qflat[2*dim:3*dim]) // plant a tie
		k := NewQuantizedKernel(Euclidean{}, NewQuantizedView(pflat, dim))
		full := make([]float64, nq*np)
		k.Tile(qflat, nil, pflat, nil, dim, full, nil)
		for _, tiling := range [][2]int{{1, np}, {nq, 1}, {4, 16}, {3, 7}} {
			tq, tp := tiling[0], tiling[1]
			got := make([]float64, nq*np)
			for q0 := 0; q0 < nq; q0 += tq {
				q1 := min(q0+tq, nq)
				for p0 := 0; p0 < np; p0 += tp {
					p1 := min(p0+tp, np)
					tile := make([]float64, (q1-q0)*(p1-p0))
					k.Tile(qflat[q0*dim:q1*dim], nil, pflat[p0*dim:p1*dim], nil, dim, tile, nil)
					for i := q0; i < q1; i++ {
						copy(got[i*np+p0:i*np+p1], tile[(i-q0)*(p1-p0):(i-q0+1)*(p1-p0)])
					}
				}
			}
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("dim=%d tiling %dx%d: tile[%d]=%v, full=%v", dim, tq, tp, i, got[i], full[i])
				}
			}
		}
		row := make([]float64, np)
		for i := 0; i < nq; i++ {
			k.Ordering(qflat[i*dim:(i+1)*dim], pflat, dim, row)
			for j := range row {
				if full[i*np+j] != row[j] {
					t.Fatalf("dim=%d q=%d p=%d: tile %v, row %v (Tile and Ordering must share bits)",
						dim, i, j, full[i*np+j], row[j])
				}
			}
		}
		// Viewless kernel (on-the-fly quantization of the same block)
		// computes the same codes, hence the same bits.
		free := NewQuantizedKernel(Euclidean{}, nil)
		got := make([]float64, nq*np)
		free.Tile(qflat, nil, pflat, nil, dim, got, nil)
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("dim=%d pair %d: viewless %v, prebuilt %v", dim, i, got[i], full[i])
			}
		}
	}
}

// TestQuantizedAsmMatchesGo: the AVX2 scan kernel must agree bit for bit
// with the portable loop (integer accumulation is exact). Skipped where
// the asm path is unavailable.
func TestQuantizedAsmMatchesGo(t *testing.T) {
	if !useQuantAsm {
		t.Skip("no asm path on this CPU")
	}
	rng := rand.New(rand.NewSource(341))
	for _, stride := range []int{16, 32, 48, 64, 80, 784 + 16 - 784%16, 2048} {
		rows := 37
		qc := make([]int8, stride)
		codes := make([]int8, rows*stride)
		for i := range qc {
			qc[i] = int8(rng.Intn(255) - 127)
		}
		for i := range codes {
			codes[i] = int8(rng.Intn(255) - 127)
		}
		want := make([]int32, rows)
		got := make([]int32, rows)
		quantScanRowsGo(qc, codes, stride, rows, want)
		quantScanRowsAsm(qc, codes, stride, rows, got)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("stride=%d row %d: asm %d, go %d", stride, r, got[r], want[r])
			}
		}
	}
}

// TestQuantizedOrderingIDs: the random-access scorer must agree bitwise
// with the range scan.
func TestQuantizedOrderingIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(351))
	for _, dim := range []int{5, 64, 4099} {
		np := 29
		pflat := randFlat(rng, np, dim)
		v := NewQuantizedView(pflat, dim)
		qc := v.QuantizeQuery(pflat[:dim], nil)
		all := make([]float64, np)
		v.OrderingRange(qc, 0, np, all)
		ids := []int32{28, 0, 13, 13, 5}
		got := make([]float64, len(ids))
		v.OrderingIDs(qc, ids, got)
		for i, id := range ids {
			if got[i] != all[id] {
				t.Fatalf("dim=%d id=%d: OrderingIDs %v, OrderingRange %v", dim, id, got[i], all[id])
			}
		}
	}
}

// TestQuantizedSubBlockResolution: scoring a whole-row sub-block of the
// view's source must hit the coded fast path and agree bitwise with the
// corresponding slice of a full scan — the contract OneShot's grouped
// phase 1 and the kd-tree leaf scans rely on.
func TestQuantizedSubBlockResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(361))
	dim := 17
	np := 53
	pflat := randFlat(rng, np, dim)
	v := NewQuantizedView(pflat, dim)
	k := NewQuantizedKernel(Euclidean{}, v)
	q := randFlat(rng, 1, dim)
	full := make([]float64, np)
	k.Ordering(q, pflat, dim, full)
	for _, r := range [][2]int{{0, np}, {3, 9}, {40, 53}, {13, 14}} {
		lo, hi := r[0], r[1]
		if got, ok := v.resolveRows(pflat[lo*dim : hi*dim]); !ok || got != lo {
			t.Fatalf("rows [%d,%d): resolve = (%d, %v), want (%d, true)", lo, hi, got, ok, lo)
		}
		out := make([]float64, hi-lo)
		k.Ordering(q, pflat[lo*dim:hi*dim], dim, out)
		for i := range out {
			if out[i] != full[lo+i] {
				t.Fatalf("rows [%d,%d) i=%d: sub-block %v, full %v", lo, hi, i, out[i], full[lo+i])
			}
		}
	}
	// Foreign buffers must not resolve.
	other := randFlat(rng, np, dim)
	if _, ok := v.resolveRows(other); ok {
		t.Fatal("foreign buffer resolved into the view")
	}
	if _, ok := v.resolveRows(pflat[1 : 1+dim]); ok {
		t.Fatal("row-misaligned slice resolved into the view")
	}
}

// TestQuantizedKernelSurface pins the grade bookkeeping every consumer
// gates on.
func TestQuantizedKernelSurface(t *testing.T) {
	e := Euclidean{}
	k := NewQuantizedKernel(e, nil)
	if !k.IsFast() {
		t.Fatal("quantized kernel must report IsFast")
	}
	if k.Grade() != GradeQuantized {
		t.Fatalf("grade %v", k.Grade())
	}
	if GradeQuantized.String() != "quantized" {
		t.Fatalf("GradeQuantized.String() = %q", GradeQuantized.String())
	}
	if NewGradeKernel(e, GradeQuantized).Grade() != GradeQuantized {
		t.Fatal("NewGradeKernel round trip failed for quantized")
	}
	if k.NeedsNorms() {
		t.Fatal("quantized kernel must not request norms")
	}
	if n := k.Norms([]float32{1, 2, 3}, 3, nil); n != nil {
		t.Fatalf("quantized Norms = %v, want nil", n)
	}
	if b := k.OrderingBound(2.0); !math.IsInf(b, 1) {
		t.Fatalf("quantized OrderingBound = %v, want +Inf (no one-ulp bound is safe)", b)
	}
	pflat := []float32{0, 1, 2, 3, 4, 5}
	v := NewQuantizedView(pflat, 3)
	if NewQuantizedKernel(e, v).View() != v {
		t.Fatal("View() must return the bound view")
	}
	if v.N() != 2 || v.Dim() != 3 || v.Stride() != quantAlign || v.Bytes() != 2*quantAlign {
		t.Fatalf("view geometry: n=%d dim=%d stride=%d bytes=%d", v.N(), v.Dim(), v.Stride(), v.Bytes())
	}
}

// TestQuantizedNonEuclideanFallsBackToFast: metrics without a quantized
// implementation must behave exactly like their Gram-fast kernel.
func TestQuantizedNonEuclideanFallsBackToFast(t *testing.T) {
	rng := rand.New(rand.NewSource(371))
	for _, m := range []Metric[[]float32]{Manhattan{}, Chebyshev{}, NewMinkowski(2.5)} {
		dim := 5
		qflat := randFlat(rng, 3, dim)
		pflat := randFlat(rng, 8, dim)
		want := make([]float64, 24)
		got := make([]float64, 24)
		NewFastKernel(m).Tile(qflat, nil, pflat, nil, dim, want, nil)
		NewQuantizedKernel(m, nil).Tile(qflat, nil, pflat, nil, dim, got, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s pair %d: quantized %v, fast %v", m.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestQuantizedDegenerateAndEmpty: constant dimensions (scale 0) score
// zero everywhere, and empty/single-row views behave.
func TestQuantizedDegenerateAndEmpty(t *testing.T) {
	v := NewQuantizedView(nil, 4)
	if v.N() != 0 || v.ErrorBound() != 0 {
		t.Fatalf("empty view: n=%d bound=%v", v.N(), v.ErrorBound())
	}
	v.OrderingRange(v.QuantizeQuery([]float32{1, 2, 3, 4}, nil), 0, 0, nil)

	// All-constant data: every scale is 0, every distance exactly 0.
	flat := []float32{7, 7, 7, 7, 7, 7}
	v = NewQuantizedView(flat, 3)
	if v.MaxScale() != 0 || v.ErrorBound() != 0 {
		t.Fatalf("constant view: scale=%v bound=%v", v.MaxScale(), v.ErrorBound())
	}
	out := make([]float64, 2)
	v.OrderingRange(v.QuantizeQuery([]float32{7, 7, 7}, nil), 0, 2, out)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("constant view distances %v, want zeros", out)
	}
}

// quantBenchN is the n-sweep grid for the memory-bound crossover: 100k
// is past L2, 1M is past any cache on CI-class hardware.
var quantBenchN = []int{100_000, 1_000_000}

var (
	quantBenchMu   sync.Mutex
	quantBenchFlat = map[int][]float32{}
	quantBenchView = map[int]*QuantizedView{}
)

// quantBenchData builds (once per n) a dim-64 corpus and its view.
func quantBenchData(n int) ([]float32, *QuantizedView) {
	quantBenchMu.Lock()
	defer quantBenchMu.Unlock()
	if f, ok := quantBenchFlat[n]; ok {
		return f, quantBenchView[n]
	}
	rng := rand.New(rand.NewSource(int64(n)))
	f := make([]float32, n*64)
	for i := range f {
		f[i] = rng.Float32()
	}
	quantBenchFlat[n] = f
	quantBenchView[n] = NewQuantizedView(f, 64)
	return f, quantBenchView[n]
}

// BenchmarkRowScanN sweeps the single-query row scan across corpus sizes
// at dim 64 — the memory-bound regime the quantized grade targets. The
// quantized variant includes the per-scan query quantization; the view
// (an index-build artifact) is excluded.
func BenchmarkRowScanNChunked(b *testing.B) {
	k := NewChunkedKernel(Euclidean{})
	for _, n := range quantBenchN {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			flat, _ := quantBenchData(n)
			q := flat[:64]
			out := make([]float64, n)
			b.SetBytes(int64(len(flat) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Ordering(q, flat, 64, out)
			}
		})
	}
}

func BenchmarkRowScanNQuantized(b *testing.B) {
	for _, n := range quantBenchN {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			flat, v := quantBenchData(n)
			k := NewQuantizedKernel(Euclidean{}, v)
			q := flat[:64]
			out := make([]float64, n)
			b.SetBytes(int64(v.Bytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Ordering(q, flat, 64, out)
			}
		})
	}
}

// TestQuantizedRowFasterSmoke asserts the quantized/chunked row-scan
// throughput ratio exceeds 1 at n=100k dim 64 — the memory-bound regime
// the grade exists for. Timing assertion, so it only runs when
// RBC_BENCH_SMOKE=1; the stricter >=2x gate at n=1M lives in the
// bench-regression job via cmd/benchcmp.
func TestQuantizedRowFasterSmoke(t *testing.T) {
	if os.Getenv("RBC_BENCH_SMOKE") == "" {
		t.Skip("timing assertion; set RBC_BENCH_SMOKE=1 to run")
	}
	const n, dim = 100_000, 64
	flat, v := quantBenchData(n)
	q := flat[:dim]
	out := make([]float64, n)
	chunked := NewChunkedKernel(Euclidean{})
	quant := NewQuantizedKernel(Euclidean{}, v)
	time10 := func(k *Kernel) float64 {
		k.Ordering(q, flat, dim, out) // warm
		best := math.Inf(1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for i := 0; i < 10; i++ {
				k.Ordering(q, flat, dim, out)
			}
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	tc, tq := time10(chunked), time10(quant)
	ratio := tc / tq
	t.Logf("n=%d dim=%d: chunked %.3fms quantized %.3fms ratio %.2fx", n, dim, tc*1e3, tq*1e3, ratio)
	if ratio <= 1 {
		t.Fatalf("quantized row scan not faster than chunked at n=%d (ratio %.2f)", n, ratio)
	}
}
