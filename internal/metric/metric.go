package metric

// Metric is a distance function over points of type P. Implementations
// used with the exact RBC search and with the cover tree must satisfy the
// metric axioms, in particular the triangle inequality: the pruning rules
// are unsound otherwise.
type Metric[P any] interface {
	// Distance returns the distance between a and b. It must be
	// non-negative, symmetric and satisfy the triangle inequality.
	Distance(a, b P) float64
	// Name identifies the metric in reports and serialized indexes.
	Name() string
}

// Func adapts a plain function to the Metric interface.
type Func[P any] struct {
	F     func(a, b P) float64
	Label string
}

// Distance implements Metric.
func (f Func[P]) Distance(a, b P) float64 { return f.F(a, b) }

// Name implements Metric.
func (f Func[P]) Name() string {
	if f.Label == "" {
		return "func"
	}
	return f.Label
}

// Batch is the vector fast path: distances from one query to many points
// stored contiguously. flat holds len(out) points of dimension dim, back
// to back, exactly as in a vec.Dataset.
type Batch interface {
	Distances(q []float32, flat []float32, dim int, out []float64)
}

// BatchDistances computes distances from q to every point in flat using
// m's Batch implementation when available, falling back to per-point
// Distance calls otherwise. It returns the number of distance evaluations
// performed (always len(out)).
func BatchDistances(m Metric[[]float32], q []float32, flat []float32, dim int, out []float64) int {
	if b, ok := m.(Batch); ok {
		b.Distances(q, flat, dim, out)
		return len(out)
	}
	for i := range out {
		out[i] = m.Distance(q, flat[i*dim:(i+1)*dim])
	}
	return len(out)
}
