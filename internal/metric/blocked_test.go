package metric

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"
)

// blockedDims stresses remainder handling in both loop nests: the lane
// tail inside each chunk (dims not ≡ 0 mod 8) and the chunk boundary
// itself (4099 > chunkDims).
var blockedDims = []int{1, 3, 17, 64, 784, 4099}

// blockedScales mixes magnitude regimes so the float32 lane sums see
// cancellation and dynamic range, not just uniform [0,1) data.
var blockedScales = []float32{1e-3, 1, 1e3}

// TestBlockedRowBitStability: the register-blocked row must be
// bit-identical to the unblocked chunked row for every point count that
// exercises a different mix of the width-4 / width-2 / width-1 paths.
func TestBlockedRowBitStability(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, dim := range blockedDims {
		for _, scale := range blockedScales {
			for _, np := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16, 31} {
				q := randFlat(rng, 1, dim)
				flat := randFlat(rng, np, dim)
				for i := range q {
					q[i] *= scale
				}
				for i := range flat {
					flat[i] *= scale
				}
				want := make([]float64, np)
				got := make([]float64, np)
				euclidChunkedRow(q, flat, dim, want)
				euclidChunkedRowBlocked(q, flat, dim, got)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("dim=%d scale=%g np=%d point %d: blocked %v, unblocked %v",
							dim, scale, np, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestBlockedWidthsAgree pins the three block widths against the width-1
// pair reference directly, so a regression in quad or duo cannot hide
// behind the row driver's path selection.
func TestBlockedWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for _, dim := range blockedDims {
		q := randFlat(rng, 1, dim)
		flat := randFlat(rng, 4, dim)
		ref := make([]float64, 4)
		for j := 0; j < 4; j++ {
			ref[j] = euclidChunkedPair(q, flat[j*dim:(j+1)*dim])
		}
		var quad [4]float64
		euclidChunkedQuad(q, flat, dim, quad[:])
		var duo [2]float64
		euclidChunkedDuo(q, flat[:2*dim], dim, duo[:])
		for j := 0; j < 4; j++ {
			if quad[j] != ref[j] {
				t.Fatalf("dim=%d: quad[%d] = %v, pair = %v", dim, j, quad[j], ref[j])
			}
		}
		for j := 0; j < 2; j++ {
			if duo[j] != ref[j] {
				t.Fatalf("dim=%d: duo[%d] = %v, pair = %v", dim, j, duo[j], ref[j])
			}
		}
	}
}

// TestBlockedTileMatchesOrdering: with the blocked path active inside
// Tile (np >= blockedMinPoints), Tile must still agree bitwise with the
// (unblocked) Ordering reference row — the chunked grade's Tile≡Ordering
// contract survives register blocking.
func TestBlockedTileMatchesOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	k := NewChunkedKernel(Euclidean{})
	for _, dim := range blockedDims {
		nq, np := 3, 2*blockedMinPoints+3
		qflat := randFlat(rng, nq, dim)
		pflat := randFlat(rng, np, dim)
		tile := make([]float64, nq*np)
		k.Tile(qflat, nil, pflat, nil, dim, tile, nil)
		row := make([]float64, np)
		for i := 0; i < nq; i++ {
			k.Ordering(qflat[i*dim:(i+1)*dim], pflat, dim, row)
			for j := range row {
				if tile[i*np+j] != row[j] {
					t.Fatalf("dim=%d query %d point %d: tile %v, ordering %v",
						dim, i, j, tile[i*np+j], row[j])
				}
			}
		}
	}
}

// TestBlockedDuplicatesExactZero: identical query/point rows must give
// exactly zero through every blocked width (the lane sums cancel term by
// term, so any reassociation bug shows up as a nonzero).
func TestBlockedDuplicatesExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, dim := range blockedDims {
		q := randFlat(rng, 1, dim)
		flat := make([]float32, 9*dim)
		for j := 0; j < 9; j++ {
			copy(flat[j*dim:(j+1)*dim], q)
		}
		out := make([]float64, 9)
		euclidChunkedRowBlocked(q, flat, dim, out)
		for j, v := range out {
			if v != 0 {
				t.Fatalf("dim=%d point %d: duplicate distance %v, want exact 0", dim, j, v)
			}
		}
	}
}

func BenchmarkRowKernelBlocked(b *testing.B) {
	for _, dim := range []int{16, 64, 256, 784} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			q, flat, out := benchVectors(dim)
			b.SetBytes(int64(len(flat) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				euclidChunkedRowBlocked(q, flat, dim, out)
			}
		})
	}
}

// TestBlockedRowFasterSmoke asserts the blocked/unblocked chunked-row
// throughput ratio exceeds 1 at the dims where the blocked path is the
// point. Timing assertion, so gated on RBC_BENCH_SMOKE like the chunked
// smoke; the strict >=1.15x gate lives in bench-regression via
// cmd/benchcmp.
func TestBlockedRowFasterSmoke(t *testing.T) {
	if os.Getenv("RBC_BENCH_SMOKE") == "" {
		t.Skip("timing assertion; set RBC_BENCH_SMOKE=1 to run")
	}
	for _, dim := range []int{64, 256} {
		q, flat, out := benchVectors(dim)
		time50 := func(row func(q, flat []float32, dim int, out []float64)) float64 {
			row(q, flat, dim, out) // warm
			best := math.Inf(1)
			for rep := 0; rep < 5; rep++ {
				start := time.Now()
				for i := 0; i < 50; i++ {
					row(q, flat, dim, out)
				}
				if s := time.Since(start).Seconds(); s < best {
					best = s
				}
			}
			return best
		}
		tc, tb := time50(euclidChunkedRow), time50(euclidChunkedRowBlocked)
		ratio := tc / tb
		t.Logf("dim=%d: chunked %.3fms blocked %.3fms ratio %.2fx", dim, tc*1e3, tb*1e3, ratio)
		if ratio <= 1 {
			t.Fatalf("dim=%d: blocked row kernel not faster than unblocked (ratio %.2f)", dim, ratio)
		}
	}
}
