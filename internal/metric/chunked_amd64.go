//go:build amd64

package metric

// useChunkedAsm gates the AVX2 blocked chunk body. The asm path performs
// the identical lane operations in the identical order as chunkedBodyGo
// (packed single-precision subtract/multiply/add are elementwise IEEE
// binary32, and neither side fuses the multiply-add), so this is purely a
// throughput switch — results are bit-identical either way.
var useChunkedAsm = x86HasAVX2()

// chunkedBody4Asm accumulates the 8-lane float32 sums of squared
// differences of q against r0..r3 over the first n elements (n a positive
// multiple of 8), four point columns per pass. Implemented in
// chunked_amd64.s.
//
//go:noescape
func chunkedBody4Asm(q, r0, r1, r2, r3 *float32, n int, lanes *[4][8]float32)

// chunkedBody4 runs the aligned chunk body for four rows at once: the
// AVX2 kernel when the host supports it, the portable lane loop
// otherwise. lanes must be zeroed by the caller; nb is a multiple of 8.
func chunkedBody4(q, r0, r1, r2, r3 []float32, nb int, lanes *[4][8]float32) {
	if nb == 0 {
		return
	}
	if useChunkedAsm {
		chunkedBody4Asm(&q[0], &r0[0], &r1[0], &r2[0], &r3[0], nb, lanes)
		return
	}
	chunkedBodyGo(q, r0, nb, &lanes[0])
	chunkedBodyGo(q, r1, nb, &lanes[1])
	chunkedBodyGo(q, r2, nb, &lanes[2])
	chunkedBodyGo(q, r3, nb, &lanes[3])
}
