package metric

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"
)

// chunkedDims is the dimension grid the error-bound property tests sweep:
// sub-lane (1, 3), odd mid-size (17), the bench dimension (64), MNIST
// (784) and a multi-chunk size (4099 > 2^11) that exercises the per-chunk
// float64 folding.
var chunkedDims = []int{1, 3, 17, 64, 784, 4099}

// chunkedAbsFloor is the absolute underflow floor of the chunked error
// contract: each term's square can underflow float32 by at most the
// smallest normal float32.
func chunkedAbsFloor(dim int) float64 { return float64(dim) * 0x1p-126 }

// TestChunkedWithinErrorBound: across the dimension grid and adversarial
// magnitude mixes, the chunked tile must stay within the derived relative
// error bound of the exact kernel (plus the underflow floor).
func TestChunkedWithinErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	exact := NewKernel(Euclidean{})
	chunked := NewChunkedKernel(Euclidean{})
	// Magnitude regimes: uniform tiny/unit/huge scales plus a per-
	// coordinate mix spanning 24 orders of magnitude, and a near-
	// cancellation set (points clustered around a large offset).
	scales := []struct {
		name string
		fill func(buf []float32)
	}{
		{"unit", func(buf []float32) {
			for i := range buf {
				buf[i] = rng.Float32()*4 - 2
			}
		}},
		{"tiny-1e-12", func(buf []float32) {
			for i := range buf {
				buf[i] = (rng.Float32()*4 - 2) * 1e-12
			}
		}},
		{"huge-1e12", func(buf []float32) {
			for i := range buf {
				buf[i] = (rng.Float32()*4 - 2) * 1e12
			}
		}},
		{"mixed-magnitudes", func(buf []float32) {
			for i := range buf {
				exp := rng.Intn(25) - 12 // 1e-12 … 1e12
				buf[i] = (rng.Float32()*4 - 2) * float32(math.Pow(10, float64(exp)))
			}
		}},
		{"near-cancellation", func(buf []float32) {
			for i := range buf {
				buf[i] = 1e6 + rng.Float32() // squared diffs ~1 vs coords ~1e12
			}
		}},
	}
	for _, dim := range chunkedDims {
		bound := ChunkedErrorBound(dim)
		floor := chunkedAbsFloor(dim)
		for _, sc := range scales {
			nq, np := 4, 13
			qflat := make([]float32, nq*dim)
			pflat := make([]float32, np*dim)
			sc.fill(qflat)
			sc.fill(pflat)
			want := make([]float64, nq*np)
			got := make([]float64, nq*np)
			exact.Tile(qflat, nil, pflat, nil, dim, want, nil)
			chunked.Tile(qflat, nil, pflat, nil, dim, got, nil)
			for i := range want {
				if math.IsInf(got[i], 1) || math.IsNaN(got[i]) {
					t.Fatalf("dim=%d %s pair %d: chunked %v (inputs within float32 square range)", dim, sc.name, i, got[i])
				}
				if err := math.Abs(got[i] - want[i]); err > bound*want[i]+floor {
					t.Fatalf("dim=%d %s pair %d: chunked %v, exact %v, |err|=%v exceeds %v·exact+%v",
						dim, sc.name, i, got[i], want[i], err, bound, floor)
				}
			}
		}
	}
}

// TestChunkedDuplicatesExactZero: for bit-identical rows every float32
// difference is exactly zero, so the chunked ordering distance must be
// exactly zero — duplicates keep their razor-sharp ties in the chunked
// grade too.
func TestChunkedDuplicatesExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	k := NewChunkedKernel(Euclidean{})
	for _, dim := range []int{1, 7, 64, 784} {
		np := 21
		pflat := randFlat(rng, np, dim)
		for i := range pflat {
			pflat[i] *= 1e4
		}
		q := make([]float32, dim)
		copy(q, pflat[13*dim:14*dim])
		out := make([]float64, np)
		k.Tile(q, nil, pflat, nil, dim, out, nil)
		if out[13] != 0 {
			t.Fatalf("dim=%d: duplicate row chunked distance %v, want exactly 0", dim, out[13])
		}
		for j, o := range out {
			if o < 0 || math.IsNaN(o) {
				t.Fatalf("dim=%d p=%d: chunked distance %v", dim, j, o)
			}
		}
	}
}

// TestChunkedTileShapeInvariance: any tiling of the same (Q, X) must give
// bit-identical chunked values, and the chunked Tile must be bit-identical
// to the chunked Ordering row scan (they share the per-pair loop).
func TestChunkedTileShapeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(291))
	k := NewChunkedKernel(Euclidean{})
	for _, dim := range []int{3, 17, 64} {
		nq, np := 11, 41
		qflat := randFlat(rng, nq, dim)
		pflat := randFlat(rng, np, dim)
		copy(pflat[5*dim:6*dim], qflat[2*dim:3*dim]) // plant a tie
		full := make([]float64, nq*np)
		k.Tile(qflat, nil, pflat, nil, dim, full, nil)
		for _, tiling := range [][2]int{{1, np}, {nq, 1}, {4, 16}, {3, 7}} {
			tq, tp := tiling[0], tiling[1]
			got := make([]float64, nq*np)
			for q0 := 0; q0 < nq; q0 += tq {
				q1 := min(q0+tq, nq)
				for p0 := 0; p0 < np; p0 += tp {
					p1 := min(p0+tp, np)
					tile := make([]float64, (q1-q0)*(p1-p0))
					k.Tile(qflat[q0*dim:q1*dim], nil, pflat[p0*dim:p1*dim], nil, dim, tile, nil)
					for i := q0; i < q1; i++ {
						copy(got[i*np+p0:i*np+p1], tile[(i-q0)*(p1-p0):(i-q0+1)*(p1-p0)])
					}
				}
			}
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("dim=%d tiling %dx%d: tile[%d]=%v, full=%v", dim, tq, tp, i, got[i], full[i])
				}
			}
		}
		row := make([]float64, np)
		for i := 0; i < nq; i++ {
			k.Ordering(qflat[i*dim:(i+1)*dim], pflat, dim, row)
			for j := range row {
				if full[i*np+j] != row[j] {
					t.Fatalf("dim=%d q=%d p=%d: tile %v, row %v (Tile and Ordering must share bits)",
						dim, i, j, full[i*np+j], row[j])
				}
			}
		}
	}
}

// TestChunkedKernelSurface pins the grade bookkeeping every consumer
// gates on.
func TestChunkedKernelSurface(t *testing.T) {
	e := Euclidean{}
	exact, fast, chunked := NewKernel(e), NewFastKernel(e), NewChunkedKernel(e)
	if exact.IsFast() || !fast.IsFast() || !chunked.IsFast() {
		t.Fatalf("IsFast: exact=%v fast=%v chunked=%v", exact.IsFast(), fast.IsFast(), chunked.IsFast())
	}
	if exact.Grade() != GradeExact || fast.Grade() != GradeFast || chunked.Grade() != GradeChunked {
		t.Fatalf("grades: %v %v %v", exact.Grade(), fast.Grade(), chunked.Grade())
	}
	for g, want := range map[Grade]string{GradeExact: "exact", GradeFast: "fast", GradeChunked: "chunked"} {
		if g.String() != want {
			t.Fatalf("Grade(%d).String() = %q", g, g.String())
		}
		if NewGradeKernel(e, g).Grade() != g {
			t.Fatalf("NewGradeKernel round trip failed for %v", g)
		}
	}
	if chunked.NeedsNorms() {
		t.Fatal("chunked kernel must not request norms")
	}
	if n := chunked.Norms([]float32{1, 2, 3}, 3, nil); n != nil {
		t.Fatalf("chunked Norms = %v, want nil", n)
	}
	if b := chunked.OrderingBound(2.0); !math.IsInf(b, 1) {
		t.Fatalf("chunked OrderingBound = %v, want +Inf (no one-ulp bound is safe)", b)
	}
}

// TestChunkedNonEuclideanFallsBackToFast: metrics without a chunked
// implementation must behave exactly like their Gram-fast kernel.
func TestChunkedNonEuclideanFallsBackToFast(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, m := range []Metric[[]float32]{Manhattan{}, Chebyshev{}, NewMinkowski(2.5)} {
		dim := 5
		qflat := randFlat(rng, 3, dim)
		pflat := randFlat(rng, 8, dim)
		want := make([]float64, 24)
		got := make([]float64, 24)
		NewFastKernel(m).Tile(qflat, nil, pflat, nil, dim, want, nil)
		NewChunkedKernel(m).Tile(qflat, nil, pflat, nil, dim, got, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s pair %d: chunked %v, fast %v", m.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestChunkedErrorBoundShape: the bound must be positive, monotone in dim
// and saturate at the chunk size (folding caps per-chunk accumulation).
func TestChunkedErrorBoundShape(t *testing.T) {
	prev := 0.0
	for _, dim := range []int{1, 8, 64, 2048} {
		b := ChunkedErrorBound(dim)
		if b <= 0 || b >= 1e-3 {
			t.Fatalf("dim=%d: bound %v out of range", dim, b)
		}
		if b < prev {
			t.Fatalf("dim=%d: bound %v not monotone", dim, b)
		}
		prev = b
	}
	if ChunkedErrorBound(1<<20) != ChunkedErrorBound(1<<11) {
		t.Fatal("bound must saturate at the chunk size")
	}
}

// TestChunkedRowFasterSmoke asserts the chunked/exact row-kernel
// throughput ratio exceeds 1 at dim >= 64 — the point of the grade. It is
// a timing assertion, so it only runs when RBC_BENCH_SMOKE=1 (the CI
// bench smoke sets it); the stricter >=1.5x gate lives in the
// bench-regression job via cmd/benchcmp.
func TestChunkedRowFasterSmoke(t *testing.T) {
	if os.Getenv("RBC_BENCH_SMOKE") == "" {
		t.Skip("timing assertion; set RBC_BENCH_SMOKE=1 to run")
	}
	for _, dim := range []int{64, 256} {
		q, flat, out := benchVectors(dim)
		exact := NewKernel(Euclidean{})
		chunked := NewChunkedKernel(Euclidean{})
		time50 := func(k *Kernel) float64 {
			k.Ordering(q, flat, dim, out) // warm
			best := math.Inf(1)
			for rep := 0; rep < 5; rep++ {
				start := time.Now()
				for i := 0; i < 50; i++ {
					k.Ordering(q, flat, dim, out)
				}
				if s := time.Since(start).Seconds(); s < best {
					best = s
				}
			}
			return best
		}
		te, tc := time50(exact), time50(chunked)
		ratio := te / tc
		t.Logf("dim=%d: exact %.3fms chunked %.3fms ratio %.2fx", dim, te*1e3, tc*1e3, ratio)
		if ratio <= 1 {
			t.Fatalf("dim=%d: chunked row kernel not faster than exact (ratio %.2f)", dim, ratio)
		}
	}
}

func BenchmarkRowKernelExact(b *testing.B)   { benchmarkRowKernel(b, NewKernel(Euclidean{})) }
func BenchmarkRowKernelChunked(b *testing.B) { benchmarkRowKernel(b, NewChunkedKernel(Euclidean{})) }

// benchmarkRowKernel measures the single-query row scan (the shape the
// per-query search paths live on) at the standard dimension sweep.
func benchmarkRowKernel(b *testing.B, k *Kernel) {
	for _, dim := range []int{16, 64, 256, 784} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			q, flat, out := benchVectors(dim)
			b.SetBytes(int64(len(flat) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Ordering(q, flat, dim, out)
			}
		})
	}
}
