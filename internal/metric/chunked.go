package metric

// This file implements the chunked-fast kernel grade: float32 arithmetic
// with bounded-length float32 accumulation, folded into a float64 total
// per chunk. It is the third kernel grade (see the package comment in
// multi.go): exact and Gram-fast kernels widen every operand to float64,
// which makes the inner loop pay conversions (the exact row kernel
// converts both operands of every pair element); the chunked kernels keep
// the whole inner loop in float32 — loads, subtract, multiply, add — so
// it runs conversion-free and maps directly onto the hardware's packed
// float32 lanes.
//
// # Accumulation structure and error bound
//
// Each point row is processed in chunks of at most chunkDims = 2^11
// elements. Within a chunk, squared differences accumulate in eight
// independent float32 lanes (each lane sums at most chunkDims/8 + 1
// products); at the chunk boundary the eight lanes are widened and folded
// into a float64 running total. Because every summand (q[j]-x[j])² is
// non-negative, the summation has condition number 1 and the float32
// rounding errors cannot be amplified by cancellation: the chunked
// ordering distance o~ satisfies
//
//	|o~ − o| ≤ ChunkedErrorBound(dim) · o + dim · 2⁻¹²⁶
//
// against the exact-kernel ordering distance o, for any magnitude mix.
// The relative term comes from the standard forward-error bound for
// non-negative summation ((#adds per lane + 3 roundings per term) · 2⁻²⁴
// per chunk, the float64 fold contributing only 2⁻⁵³ terms); the absolute
// term covers float32 underflow of individual squares. The bound carries
// a 2× safety factor.
//
// Out-of-range inputs: each float32 LANE accumulates up to chunkDims/8 =
// 256 squared differences, so a lane overflows to +Inf well before any
// single square reaches MaxFloat32 — a chunk of squared differences
// around 1.3e36 each (|q[j]−x[j]| ≈ 1.2e18) already sums past ~3.4e38,
// and the chunked ordering distance becomes +Inf instead of a finite
// value. The safe envelope is Σ(q[j]−x[j])² < MaxFloat32 per 2^11-dim
// chunk (conservatively |q[j]−x[j]| ≲ 4e17 everywhere). Callers whose
// coordinates can reach that range must use the exact or Gram-fast
// grades.
//
// # Reproducibility
//
// The chunked tile kernel evaluates every (query, point) pair with
// exactly the per-pair loop the chunked row kernel runs, so — like the
// exact grade — chunked results are bit-identical across tile shapes AND
// between Tile and Ordering. What the chunked grade gives up relative to
// the exact grade is agreement with the float64 reference, not internal
// determinism.

// chunkDims bounds how many float32 products are accumulated before the
// lanes are folded into the float64 total: 2^11, small enough that the
// relative error of a chunk stays near 2⁻¹⁶ while keeping the fold cost
// negligible.
const chunkDims = 1 << 11

// f32Ulp is the float32 unit roundoff 2⁻²⁴.
const f32Ulp = 1.0 / (1 << 24)

// ChunkedErrorBound returns the relative error bound of the chunked
// kernels at dimension dim: the chunked ordering distance differs from
// the exact kernel's by at most ChunkedErrorBound(dim) times the exact
// value, plus an absolute underflow floor of dim·2⁻¹²⁶ (see the file
// comment for the derivation and the overflow caveat).
func ChunkedErrorBound(dim int) float64 {
	m := dim
	if m > chunkDims {
		m = chunkDims
	}
	// Per chunk: ≤ m/8+1 float32 adds per lane, 3 roundings per term
	// (subtract, square, the lane fold), plus the float64 chunk folds for
	// dims beyond one chunk (negligible but covered by the 2× safety
	// factor on the float32 term).
	return 2 * (float64(m)/8 + 4) * f32Ulp
}

// euclidChunkedRow is the chunked float32 row kernel: squared l2 ordering
// distances from q to every row of flat, accumulated per the contract
// above. The inner loop reads, subtracts, multiplies and adds float32
// only — no widening — so it is the vectorizable form of
// Euclidean.OrderingDistances.
func euclidChunkedRow(q, flat []float32, dim int, out []float64) {
	for i := range out {
		out[i] = euclidChunkedPair(q, flat[i*dim:(i+1)*dim])
	}
}

// euclidChunkedPair is the shared per-pair loop of the chunked row and
// tile kernels; keeping it in one place is what makes the chunked grade
// tile-shape stable.
func euclidChunkedPair(q, row []float32) float64 {
	dim := len(q)
	var s float64
	for c0 := 0; c0 < dim; c0 += chunkDims {
		c1 := c0 + chunkDims
		if c1 > dim {
			c1 = dim
		}
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		j := c0
		for ; j+8 <= c1; j += 8 {
			d0 := q[j] - row[j]
			d1 := q[j+1] - row[j+1]
			d2 := q[j+2] - row[j+2]
			d3 := q[j+3] - row[j+3]
			d4 := q[j+4] - row[j+4]
			d5 := q[j+5] - row[j+5]
			d6 := q[j+6] - row[j+6]
			d7 := q[j+7] - row[j+7]
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
			a4 += d4 * d4
			a5 += d5 * d5
			a6 += d6 * d6
			a7 += d7 * d7
		}
		for ; j < c1; j++ {
			d := q[j] - row[j]
			a0 += d * d
		}
		s += float64(a0) + float64(a1) + float64(a2) + float64(a3) +
			float64(a4) + float64(a5) + float64(a6) + float64(a7)
	}
	return s
}

// euclidChunkedTile is the chunked tile kernel: each query row streams
// the point block through the shared per-pair loop. No widening, no
// norms, no scratch — the float32 inputs are consumed in place.
func euclidChunkedTile(qflat, pflat []float32, dim, nq, np int, out []float64) {
	for i := 0; i < nq; i++ {
		euclidChunkedRow(qflat[i*dim:(i+1)*dim], pflat, dim, out[i*np:(i+1)*np])
	}
}
