package metric

// This file implements the chunked-fast kernel grade: float32 arithmetic
// with bounded-length float32 accumulation, folded into a float64 total
// per chunk. It is the third kernel grade (see the package comment in
// multi.go): exact and Gram-fast kernels widen every operand to float64,
// which makes the inner loop pay conversions (the exact row kernel
// converts both operands of every pair element); the chunked kernels keep
// the whole inner loop in float32 — loads, subtract, multiply, add — so
// it runs conversion-free and maps directly onto the hardware's packed
// float32 lanes.
//
// # Accumulation structure and error bound
//
// Each point row is processed in chunks of at most chunkDims = 2^11
// elements. Within a chunk, squared differences accumulate in eight
// independent float32 lanes (each lane sums at most chunkDims/8 + 1
// products); at the chunk boundary the eight lanes are widened and folded
// into a float64 running total. Because every summand (q[j]-x[j])² is
// non-negative, the summation has condition number 1 and the float32
// rounding errors cannot be amplified by cancellation: the chunked
// ordering distance o~ satisfies
//
//	|o~ − o| ≤ ChunkedErrorBound(dim) · o + dim · 2⁻¹²⁶
//
// against the exact-kernel ordering distance o, for any magnitude mix.
// The relative term comes from the standard forward-error bound for
// non-negative summation ((#adds per lane + 3 roundings per term) · 2⁻²⁴
// per chunk, the float64 fold contributing only 2⁻⁵³ terms); the absolute
// term covers float32 underflow of individual squares. The bound carries
// a 2× safety factor.
//
// Out-of-range inputs: each float32 LANE accumulates up to chunkDims/8 =
// 256 squared differences, so a lane overflows to +Inf well before any
// single square reaches MaxFloat32 — a chunk of squared differences
// around 1.3e36 each (|q[j]−x[j]| ≈ 1.2e18) already sums past ~3.4e38,
// and the chunked ordering distance becomes +Inf instead of a finite
// value. The safe envelope is Σ(q[j]−x[j])² < MaxFloat32 per 2^11-dim
// chunk (conservatively |q[j]−x[j]| ≲ 4e17 everywhere). Callers whose
// coordinates can reach that range must use the exact or Gram-fast
// grades.
//
// # Reproducibility
//
// The chunked tile kernel evaluates every (query, point) pair with
// exactly the per-pair loop the chunked row kernel runs, so — like the
// exact grade — chunked results are bit-identical across tile shapes AND
// between Tile and Ordering. What the chunked grade gives up relative to
// the exact grade is agreement with the float64 reference, not internal
// determinism.
//
// # Register blocking
//
// The tile kernel additionally register-blocks the scan: above
// blockedMinPoints rows it processes four point columns per pass over the
// query row (euclidChunkedQuad), so each query chunk is loaded once for
// four accumulator sets instead of four times. The lane structure is
// untouched — each (query, point) pair still accumulates the identical
// 8-lane float32 sequence in the identical order, followed by the
// identical left-to-right float64 fold — so blocked results are
// bit-identical to the unblocked row at every width (1, 2 and 4) and
// ChunkedErrorBound holds unchanged. On amd64 with AVX2 the four-column
// chunk body runs as an assembly kernel (chunked_amd64.s) whose packed
// subtract/multiply/add instructions are elementwise IEEE binary32 — the
// same operations the scalar loop performs lane by lane (no FMA: the Go
// compiler does not fuse the scalar float32 multiply-add either); a
// pure-Go body (chunkedBodyGo) serves every other platform,
// bit-identically. Ordering deliberately stays on the unblocked row: it
// is the reference shape the property tests and the blocked-vs-chunked
// bench gate compare against.

// chunkDims bounds how many float32 products are accumulated before the
// lanes are folded into the float64 total: 2^11, small enough that the
// relative error of a chunk stays near 2⁻¹⁶ while keeping the fold cost
// negligible.
const chunkDims = 1 << 11

// f32Ulp is the float32 unit roundoff 2⁻²⁴.
const f32Ulp = 1.0 / (1 << 24)

// ChunkedErrorBound returns the relative error bound of the chunked
// kernels at dimension dim: the chunked ordering distance differs from
// the exact kernel's by at most ChunkedErrorBound(dim) times the exact
// value, plus an absolute underflow floor of dim·2⁻¹²⁶ (see the file
// comment for the derivation and the overflow caveat).
func ChunkedErrorBound(dim int) float64 {
	m := dim
	if m > chunkDims {
		m = chunkDims
	}
	// Per chunk: ≤ m/8+1 float32 adds per lane, 3 roundings per term
	// (subtract, square, the lane fold), plus the float64 chunk folds for
	// dims beyond one chunk (negligible but covered by the 2× safety
	// factor on the float32 term).
	return 2 * (float64(m)/8 + 4) * f32Ulp
}

// euclidChunkedRow is the chunked float32 row kernel: squared l2 ordering
// distances from q to every row of flat, accumulated per the contract
// above. The inner loop reads, subtracts, multiplies and adds float32
// only — no widening — so it is the vectorizable form of
// Euclidean.OrderingDistances.
func euclidChunkedRow(q, flat []float32, dim int, out []float64) {
	for i := range out {
		out[i] = euclidChunkedPair(q, flat[i*dim:(i+1)*dim])
	}
}

// euclidChunkedPair is the shared per-pair loop of the chunked row and
// tile kernels; keeping it in one place is what makes the chunked grade
// tile-shape stable.
func euclidChunkedPair(q, row []float32) float64 {
	dim := len(q)
	var s float64
	for c0 := 0; c0 < dim; c0 += chunkDims {
		c1 := c0 + chunkDims
		if c1 > dim {
			c1 = dim
		}
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		j := c0
		for ; j+8 <= c1; j += 8 {
			d0 := q[j] - row[j]
			d1 := q[j+1] - row[j+1]
			d2 := q[j+2] - row[j+2]
			d3 := q[j+3] - row[j+3]
			d4 := q[j+4] - row[j+4]
			d5 := q[j+5] - row[j+5]
			d6 := q[j+6] - row[j+6]
			d7 := q[j+7] - row[j+7]
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
			a4 += d4 * d4
			a5 += d5 * d5
			a6 += d6 * d6
			a7 += d7 * d7
		}
		for ; j < c1; j++ {
			d := q[j] - row[j]
			a0 += d * d
		}
		s += float64(a0) + float64(a1) + float64(a2) + float64(a3) +
			float64(a4) + float64(a5) + float64(a6) + float64(a7)
	}
	return s
}

// euclidChunkedTile is the chunked tile kernel: each query row streams
// the point block through the shared per-pair arithmetic. No widening, no
// norms, no scratch — the float32 inputs are consumed in place. Above
// blockedMinPoints rows the scan takes the register-blocked form; the
// selection is invisible in the output because blocked and unblocked rows
// are bit-identical (see the file comment).
func euclidChunkedTile(qflat, pflat []float32, dim, nq, np int, out []float64) {
	blocked := np >= blockedMinPoints
	for i := 0; i < nq; i++ {
		q := qflat[i*dim : (i+1)*dim]
		row := out[i*np : (i+1)*np]
		if blocked {
			euclidChunkedRowBlocked(q, pflat, dim, row)
		} else {
			euclidChunkedRow(q, pflat, dim, row)
		}
	}
}

// blockedMinPoints is the point count above which euclidChunkedTile takes
// the register-blocked row form. Because blocked and unblocked scans are
// bit-identical the threshold is purely a performance choice: below two
// full quad passes the blocked form degenerates to the remainder loops
// and has nothing to amortize.
const blockedMinPoints = 8

// euclidChunkedRowBlocked is the register-blocked form of
// euclidChunkedRow: four point columns per pass over the query row, a
// two-column pass for the remainder pair, and the plain per-pair loop for
// a final odd row. Bit-identical to euclidChunkedRow (the per-pair lane
// arithmetic is unchanged; only the interleaving across independent
// output values differs).
func euclidChunkedRowBlocked(q, flat []float32, dim int, out []float64) {
	np := len(out)
	i := 0
	for ; i+4 <= np; i += 4 {
		euclidChunkedQuad(q, flat[i*dim:(i+4)*dim], dim, out[i:i+4])
	}
	if i+2 <= np {
		euclidChunkedDuo(q, flat[i*dim:(i+2)*dim], dim, out[i:i+2])
		i += 2
	}
	if i < np {
		out[i] = euclidChunkedPair(q, flat[i*dim:(i+1)*dim])
	}
}

// euclidChunkedQuad scores q against four consecutive rows. Per chunk the
// aligned body (a multiple of 8 elements) runs through chunkedBody4 —
// AVX2 assembly on capable amd64 hosts, the pure-Go lane loop elsewhere —
// and the sub-lane tail accumulates onto lane 0, exactly as
// euclidChunkedPair does; the float64 folds are left-to-right per row.
func euclidChunkedQuad(q, rows []float32, dim int, out []float64) {
	r0 := rows[0:dim]
	r1 := rows[dim : 2*dim]
	r2 := rows[2*dim : 3*dim]
	r3 := rows[3*dim : 4*dim]
	var s0, s1, s2, s3 float64
	for c0 := 0; c0 < dim; c0 += chunkDims {
		c1 := c0 + chunkDims
		if c1 > dim {
			c1 = dim
		}
		nb := (c1 - c0) &^ 7
		var lanes [4][8]float32
		chunkedBody4(q[c0:c1], r0[c0:c1], r1[c0:c1], r2[c0:c1], r3[c0:c1], nb, &lanes)
		for j := c0 + nb; j < c1; j++ {
			d := q[j] - r0[j]
			lanes[0][0] += d * d
			d = q[j] - r1[j]
			lanes[1][0] += d * d
			d = q[j] - r2[j]
			lanes[2][0] += d * d
			d = q[j] - r3[j]
			lanes[3][0] += d * d
		}
		s0 += foldLanes(&lanes[0])
		s1 += foldLanes(&lanes[1])
		s2 += foldLanes(&lanes[2])
		s3 += foldLanes(&lanes[3])
	}
	out[0] = s0
	out[1] = s1
	out[2] = s2
	out[3] = s3
}

// euclidChunkedDuo is the two-column variant of euclidChunkedQuad, used
// for the remainder pair of a blocked row scan.
func euclidChunkedDuo(q, rows []float32, dim int, out []float64) {
	r0 := rows[0:dim]
	r1 := rows[dim : 2*dim]
	var s0, s1 float64
	for c0 := 0; c0 < dim; c0 += chunkDims {
		c1 := c0 + chunkDims
		if c1 > dim {
			c1 = dim
		}
		nb := (c1 - c0) &^ 7
		var lanes [2][8]float32
		chunkedBodyGo(q[c0:c1], r0[c0:c1], nb, &lanes[0])
		chunkedBodyGo(q[c0:c1], r1[c0:c1], nb, &lanes[1])
		for j := c0 + nb; j < c1; j++ {
			d := q[j] - r0[j]
			lanes[0][0] += d * d
			d = q[j] - r1[j]
			lanes[1][0] += d * d
		}
		s0 += foldLanes(&lanes[0])
		s1 += foldLanes(&lanes[1])
	}
	out[0] = s0
	out[1] = s1
}

// foldLanes widens and folds one accumulator set left to right — the
// exact fold order of euclidChunkedPair's chunk boundary.
func foldLanes(lanes *[8]float32) float64 {
	return float64(lanes[0]) + float64(lanes[1]) + float64(lanes[2]) + float64(lanes[3]) +
		float64(lanes[4]) + float64(lanes[5]) + float64(lanes[6]) + float64(lanes[7])
}

// chunkedBodyGo accumulates one row's 8-lane sums over the aligned chunk
// body (nb a multiple of 8), in the same element order as
// euclidChunkedPair's lane loop. acc must be zeroed by the caller; the
// lanes are written back on return. This is the portable body behind
// chunkedBody4 and the reference the assembly kernel is tested against.
func chunkedBodyGo(q, r []float32, nb int, acc *[8]float32) {
	a0, a1, a2, a3 := acc[0], acc[1], acc[2], acc[3]
	a4, a5, a6, a7 := acc[4], acc[5], acc[6], acc[7]
	q = q[:nb]
	r = r[:nb]
	for j := 0; j+8 <= nb; j += 8 {
		d0 := q[j] - r[j]
		d1 := q[j+1] - r[j+1]
		d2 := q[j+2] - r[j+2]
		d3 := q[j+3] - r[j+3]
		d4 := q[j+4] - r[j+4]
		d5 := q[j+5] - r[j+5]
		d6 := q[j+6] - r[j+6]
		d7 := q[j+7] - r[j+7]
		a0 += d0 * d0
		a1 += d1 * d1
		a2 += d2 * d2
		a3 += d3 * d3
		a4 += d4 * d4
		a5 += d5 * d5
		a6 += d6 * d6
		a7 += d7 * d7
	}
	acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
	acc[4], acc[5], acc[6], acc[7] = a4, a5, a6, a7
}
