package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEuclideanKnownValues(t *testing.T) {
	m := Euclidean{}
	if d := m.Distance([]float32{0, 0}, []float32{3, 4}); !almostEqual(d, 5, 1e-12) {
		t.Fatalf("d=%v, want 5", d)
	}
	if d := m.Distance([]float32{1, 1, 1}, []float32{1, 1, 1}); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestManhattanKnownValues(t *testing.T) {
	m := Manhattan{}
	if d := m.Distance([]float32{0, 0}, []float32{3, -4}); !almostEqual(d, 7, 1e-12) {
		t.Fatalf("d=%v, want 7", d)
	}
}

func TestChebyshevKnownValues(t *testing.T) {
	m := Chebyshev{}
	if d := m.Distance([]float32{0, 0}, []float32{3, -4}); !almostEqual(d, 4, 1e-12) {
		t.Fatalf("d=%v, want 4", d)
	}
}

func TestMinkowskiSpecialCases(t *testing.T) {
	a := []float32{1, -2, 3}
	b := []float32{-1, 0, 4}
	m1 := NewMinkowski(1)
	if d1, dm := m1.Distance(a, b), (Manhattan{}).Distance(a, b); !almostEqual(d1, dm, 1e-9) {
		t.Fatalf("p=1: %v vs manhattan %v", d1, dm)
	}
	m2 := NewMinkowski(2)
	if d2, de := m2.Distance(a, b), (Euclidean{}).Distance(a, b); !almostEqual(d2, de, 1e-9) {
		t.Fatalf("p=2: %v vs euclidean %v", d2, de)
	}
}

func TestMinkowskiRejectsPBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p<1 should panic")
		}
	}()
	NewMinkowski(0.5)
}

func TestAngular(t *testing.T) {
	m := Angular{}
	if d := m.Distance([]float32{1, 0}, []float32{0, 1}); !almostEqual(d, math.Pi/2, 1e-9) {
		t.Fatalf("orthogonal: %v", d)
	}
	if d := m.Distance([]float32{1, 0}, []float32{2, 0}); !almostEqual(d, 0, 1e-6) {
		t.Fatalf("parallel: %v", d)
	}
	if d := m.Distance([]float32{1, 0}, []float32{-3, 0}); !almostEqual(d, math.Pi, 1e-6) {
		t.Fatalf("antiparallel: %v", d)
	}
	if d := m.Distance([]float32{0, 0}, []float32{1, 0}); !almostEqual(d, math.Pi/2, 1e-9) {
		t.Fatalf("zero vector: %v", d)
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{Euclidean{}.Name(), "euclidean"},
		{Manhattan{}.Name(), "manhattan"},
		{Chebyshev{}.Name(), "chebyshev"},
		{Angular{}.Name(), "angular"},
		{Edit{}.Name(), "edit"},
	}
	for _, c := range cases {
		if c.name != c.want {
			t.Fatalf("name %q, want %q", c.name, c.want)
		}
	}
	if NewMinkowski(3).Name() != "minkowski(p=3)" {
		t.Fatalf("minkowski name %q", NewMinkowski(3).Name())
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func[int]{F: func(a, b int) float64 { return math.Abs(float64(a - b)) }, Label: "absdiff"}
	if f.Distance(3, 7) != 4 {
		t.Fatal("Func.Distance")
	}
	if f.Name() != "absdiff" {
		t.Fatal("Func.Name")
	}
	unnamed := Func[int]{F: func(a, b int) float64 { return 0 }}
	if unnamed.Name() != "func" {
		t.Fatal("default Func name")
	}
}

// batchMatchesScalar verifies that a metric's Batch path agrees with its
// scalar Distance on random data.
func batchMatchesScalar(t *testing.T, m Metric[[]float32]) {
	t.Helper()
	b, ok := m.(Batch)
	if !ok {
		t.Fatalf("%s does not implement Batch", m.Name())
	}
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33} {
		n := 17
		flat := make([]float32, n*dim)
		q := make([]float32, dim)
		for i := range flat {
			flat[i] = rng.Float32()*4 - 2
		}
		for i := range q {
			q[i] = rng.Float32()*4 - 2
		}
		out := make([]float64, n)
		b.Distances(q, flat, dim, out)
		for i := 0; i < n; i++ {
			want := m.Distance(q, flat[i*dim:(i+1)*dim])
			if !almostEqual(out[i], want, 1e-9) {
				t.Fatalf("%s dim=%d row=%d: batch %v scalar %v", m.Name(), dim, i, out[i], want)
			}
		}
	}
}

func TestBatchEuclidean(t *testing.T) { batchMatchesScalar(t, Euclidean{}) }
func TestBatchManhattan(t *testing.T) { batchMatchesScalar(t, Manhattan{}) }
func TestBatchChebyshev(t *testing.T) { batchMatchesScalar(t, Chebyshev{}) }

func TestBatchDistancesFallback(t *testing.T) {
	// Minkowski's Batch fast path must agree with per-point Distance calls.
	m := NewMinkowski(3)
	flat := []float32{1, 2, 3, 4}
	q := []float32{0, 0}
	out := make([]float64, 2)
	n := BatchDistances(m, q, flat, 2, out)
	if n != 2 {
		t.Fatalf("evals=%d", n)
	}
	for i := 0; i < 2; i++ {
		want := m.Distance(q, flat[i*2:(i+1)*2])
		if !almostEqual(out[i], want, 1e-12) {
			t.Fatalf("row %d: %v vs %v", i, out[i], want)
		}
	}
	// And the fast path gives the same answers via the interface.
	e := Euclidean{}
	BatchDistances(e, q, flat, 2, out)
	if !almostEqual(out[0], e.Distance(q, flat[:2]), 1e-12) {
		t.Fatal("fast path mismatch")
	}
}

// sanitize maps arbitrary quick-generated float32s into a safe range.
func sanitize(v float32) float32 {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return float32(math.Mod(f, 1e6))
}

// metricAxioms property-checks non-negativity, symmetry, identity and the
// triangle inequality for a vector metric.
func metricAxioms(t *testing.T, m Metric[[]float32]) {
	t.Helper()
	f := func(a, b, c [6]float32) bool {
		av, bv, cv := make([]float32, 6), make([]float32, 6), make([]float32, 6)
		for i := 0; i < 6; i++ {
			av[i], bv[i], cv[i] = sanitize(a[i]), sanitize(b[i]), sanitize(c[i])
		}
		dab := m.Distance(av, bv)
		dba := m.Distance(bv, av)
		dac := m.Distance(av, cv)
		dcb := m.Distance(cv, bv)
		daa := m.Distance(av, av)
		tol := 1e-6 * (1 + dab + dac + dcb)
		if dab < 0 || math.Abs(dab-dba) > tol {
			return false
		}
		if daa > tol {
			return false
		}
		return dab <= dac+dcb+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("%s violates metric axioms: %v", m.Name(), err)
	}
}

func TestQuickAxiomsEuclidean(t *testing.T) { metricAxioms(t, Euclidean{}) }
func TestQuickAxiomsManhattan(t *testing.T) { metricAxioms(t, Manhattan{}) }
func TestQuickAxiomsChebyshev(t *testing.T) { metricAxioms(t, Chebyshev{}) }
func TestQuickAxiomsMinkowski(t *testing.T) { metricAxioms(t, NewMinkowski(2.5)) }

func TestEditKnownValues(t *testing.T) {
	m := Edit{}
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "xy", 2},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
	}
	for _, c := range cases {
		if d := m.Distance(c.a, c.b); d != c.want {
			t.Fatalf("edit(%q,%q)=%v, want %v", c.a, c.b, d, c.want)
		}
	}
}

// Property: edit distance is a metric on short random strings.
func TestQuickEditAxioms(t *testing.T) {
	m := Edit{}
	clamp := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	f := func(a, b, c string) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		dab := m.Distance(a, b)
		if dab != m.Distance(b, a) || dab < 0 {
			return false
		}
		if m.Distance(a, a) != 0 {
			return false
		}
		return dab <= m.Distance(a, c)+m.Distance(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphMetric(t *testing.T) {
	// A path graph 0-1-2-3 with unit weights plus a shortcut 0-3 of weight 1.5.
	g, err := NewGraph(4, []GraphEdge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 1},
		{U: 2, V: 3, Weight: 1},
		{U: 0, V: 3, Weight: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Distance(0, 3); d != 1.5 {
		t.Fatalf("d(0,3)=%v, want 1.5 (shortcut)", d)
	}
	if d := g.Distance(0, 2); d != 2 {
		t.Fatalf("d(0,2)=%v, want 2", d)
	}
	if g.N() != 4 {
		t.Fatalf("N=%d", g.N())
	}
	if g.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestGraphMetricErrors(t *testing.T) {
	if _, err := NewGraph(0, nil); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewGraph(2, []GraphEdge{{U: 0, V: 5, Weight: 1}}); err == nil {
		t.Fatal("out-of-range edge should error")
	}
	if _, err := NewGraph(2, []GraphEdge{{U: 0, V: 1, Weight: -1}}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := NewGraph(3, []GraphEdge{{U: 0, V: 1, Weight: 1}}); err == nil {
		t.Fatal("disconnected graph should error")
	}
}

// Property: the graph shortest-path distance satisfies the triangle
// inequality on a random connected graph.
func TestQuickGraphTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 12
	// Ring for connectivity plus random chords.
	edges := make([]GraphEdge, 0, n+10)
	for i := 0; i < n; i++ {
		edges = append(edges, GraphEdge{U: i, V: (i + 1) % n, Weight: 1 + rng.Float64()})
	}
	for k := 0; k < 10; k++ {
		edges = append(edges, GraphEdge{U: rng.Intn(n), V: rng.Intn(n), Weight: rng.Float64() * 3})
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if math.Abs(g.Distance(a, b)-g.Distance(b, a)) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d)", a, b)
			}
			for c := 0; c < n; c++ {
				if g.Distance(a, b) > g.Distance(a, c)+g.Distance(c, b)+1e-12 {
					t.Fatalf("triangle violated at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}
