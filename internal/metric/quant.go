package metric

import (
	"math"
	"sync"
)

// This file implements the quantized kernel grade: int8 scalar quantization
// of a point matrix with an integer multiply-accumulate inner loop. It is
// the fourth kernel grade (see the package comment in multi.go). Where the
// chunked grade still streams 4 bytes per coordinate, the quantized grade
// streams 1: beyond cache-resident n the scan is memory-bound, and the 4×
// smaller resident set converts directly into row-scan throughput.
//
// # Codes and memory layout
//
// A QuantizedView is built once over a flat row-major float32 matrix
// (typically at index Build) and holds:
//
//   - codes: one int8 per coordinate, row-major with a padded stride.
//     Each dimension chunk of at most chunkDims = 2^11 coordinates is
//     padded up to a multiple of quantAlign = 16 so the inner loop needs
//     no scalar tail; pad lanes are zero in both points and queries and
//     contribute nothing to any distance.
//   - offsets: one float64 center per logical dimension (the midpoint of
//     the data's per-dimension range). Offsets cancel in differences, so
//     they never appear in the inner loop.
//   - scales: one float64 step per dimension chunk,
//     scale_c = max_range_c / 254, chosen so every in-range coordinate
//     quantizes to a code in [-127, 127].
//
// A coordinate x in dimension j of chunk c is encoded as
// round((x − offset_j) / scale_c), clamped to [-127, 127]; queries are
// quantized the same way, once per scan. The quantized squared distance is
//
//	ô(q, x) = Σ_c scale_c² · Σ_{j ∈ c} (cq_j − cx_j)²
//
// The inner sum is pure int8→int32 multiply-accumulate — no float
// conversion per coordinate — folded to float64 once per (row, chunk).
// Because integer accumulation is exact, ô is bit-identical for any
// evaluation order: the quantized grade is tile-shape stable, Tile ≡
// Ordering, and the AVX2 path (quant_amd64.s) agrees with the pure-Go
// loop bit for bit.
//
// # Error contract
//
// Each in-range coordinate quantizes with error at most scale_c/2, so for
// a query inside the view's per-dimension envelope the distance error is
// bounded by the quantization noise of both operands:
//
//	|d(q,x) − √ô(q,x)| ≤ sqrt(Σ_c w_c·scale_c²) ≤ QuantErrorBound(dim, maxScale)
//
// with w_c the chunk widths. ErrorBound reports the view's exact bound;
// QuantErrorBound(dim, scale) is the conservative closed form mirroring
// ChunkedErrorBound. Queries outside the envelope clamp to ±127 and the
// bound no longer holds — consumers that need certified answers must not
// read quantized distances at all (the grade reports IsFast(), so
// core.Exact and core.GroupedScan reject it), and approximate consumers
// restore exact reported distances by rescoring candidates with an exact
// kernel (bruteforce.RescoreK); see the two-pass contract on
// bruteforce.SearchKQuantized.
//
// Degenerate chunks (constant across the data, scale 0) encode every
// point as code 0 and contribute 0 to every ô: a constant offset in
// ordering space that never changes candidate ranking, and exactness is
// restored by the rescoring pass.

const (
	// quantLevels is the number of quantization steps across a chunk's
	// widest per-dimension range: codes span [-127, 127].
	quantLevels = 254
	// quantAlign is the code-row alignment: each chunk's code block is
	// padded to a multiple of 16 int8 lanes so the integer inner loop
	// (and its AVX2 form) needs no scalar tail.
	quantAlign = 16
)

// quantSafety absorbs the float64 roundings of the per-chunk folds and
// the final sqrt when comparing quantized to exact distances.
const quantSafety = 1 + 1e-9

// QuantErrorBound returns the additive DISTANCE-space error bound of a
// quantized view with maximum chunk scale `scale` at dimension dim: for
// queries inside the view's per-dimension envelope,
// |d(q,x) − √ô(q,x)| ≤ QuantErrorBound(dim, scale). Compare
// ChunkedErrorBound, which is relative; quantization noise is absolute —
// scale/2 per coordinate per operand — so the natural contract here is
// additive.
func QuantErrorBound(dim int, scale float64) float64 {
	return scale * math.Sqrt(float64(dim)) * quantSafety
}

// QuantizedView is the int8-quantized image of a flat row-major float32
// matrix: codes plus the dequantization parameters needed to fold integer
// accumulators back to float64 ordering distances. Build once (O(n·dim))
// and reuse across scans; the view keeps a reference to the source buffer
// so kernels can recognize sub-blocks of it and stay on the coded fast
// path. A view must be rebuilt if the source data changes.
type QuantizedView struct {
	src    []float32 // aliased source matrix (never written)
	dim    int       // logical dimension
	n      int       // rows
	stride int       // padded code-row width (sum of padded chunk widths)

	chunkW []int // logical width of each chunk
	chunkP []int // padded width of each chunk (multiple of quantAlign)
	chunkO []int // offset of each chunk inside a padded code row

	codes   []int8    // n*stride, pad lanes zero
	offsets []float64 // per logical dimension
	scales  []float64 // per chunk
	invs    []float64 // 1/scale per chunk (0 for degenerate chunks)
	sqs     []float64 // scale² per chunk

	maxScale float64
	bound    float64 // sqrt(Σ_c w_c·scale_c²) · quantSafety
}

// NewQuantizedView quantizes the n = len(flat)/dim rows of flat. The
// returned view aliases flat (read-only) so kernels can resolve row
// sub-blocks of the same buffer; it never mutates it.
func NewQuantizedView(flat []float32, dim int) *QuantizedView {
	if dim <= 0 {
		panic("metric: NewQuantizedView with non-positive dim")
	}
	if len(flat)%dim != 0 {
		panic("metric: NewQuantizedView flat length not a multiple of dim")
	}
	n := len(flat) / dim
	nc := (dim + chunkDims - 1) / chunkDims
	if nc == 0 {
		nc = 1
	}
	v := &QuantizedView{
		src: flat, dim: dim, n: n,
		chunkW: make([]int, nc), chunkP: make([]int, nc), chunkO: make([]int, nc),
		offsets: make([]float64, dim),
		scales:  make([]float64, nc), invs: make([]float64, nc), sqs: make([]float64, nc),
	}
	for c := 0; c < nc; c++ {
		w := dim - c*chunkDims
		if w > chunkDims {
			w = chunkDims
		}
		v.chunkW[c] = w
		v.chunkP[c] = (w + quantAlign - 1) &^ (quantAlign - 1)
		v.chunkO[c] = v.stride
		v.stride += v.chunkP[c]
	}

	// Pass 1: per-dimension bounds over the data.
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for r := 0; r < n; r++ {
		row := flat[r*dim : (r+1)*dim]
		for j, x := range row {
			f := float64(x)
			if f < lo[j] {
				lo[j] = f
			}
			if f > hi[j] {
				hi[j] = f
			}
		}
	}

	// Offsets are the range midpoints; one scale per chunk, wide enough
	// for the chunk's widest dimension.
	var sumSq float64
	for c := 0; c < nc; c++ {
		j0 := c * chunkDims
		j1 := j0 + v.chunkW[c]
		var span float64
		for j := j0; j < j1 && j < dim; j++ {
			if n == 0 {
				v.offsets[j] = 0
				continue
			}
			v.offsets[j] = lo[j] + (hi[j]-lo[j])/2
			if s := hi[j] - lo[j]; s > span {
				span = s
			}
		}
		v.scales[c] = span / quantLevels
		if v.scales[c] > 0 {
			v.invs[c] = 1 / v.scales[c]
		}
		v.sqs[c] = v.scales[c] * v.scales[c]
		if v.scales[c] > v.maxScale {
			v.maxScale = v.scales[c]
		}
		sumSq += float64(v.chunkW[c]) * v.sqs[c]
	}
	v.bound = math.Sqrt(sumSq) * quantSafety
	// The closed form QuantErrorBound(dim, maxScale) dominates
	// mathematically; clamp so the two never disagree by a stray ulp.
	if cf := QuantErrorBound(v.dim, v.maxScale); v.bound > cf {
		v.bound = cf
	}

	// Pass 2: encode. Pad lanes stay zero.
	v.codes = make([]int8, n*v.stride)
	for r := 0; r < n; r++ {
		v.encodeRow(flat[r*dim:(r+1)*dim], v.codes[r*v.stride:(r+1)*v.stride])
	}
	return v
}

// N reports the number of encoded rows.
func (v *QuantizedView) N() int { return v.n }

// Dim reports the logical dimension.
func (v *QuantizedView) Dim() int { return v.dim }

// Stride reports the padded width of one code row; QuantizeQuery
// destinations are grown to this length.
func (v *QuantizedView) Stride() int { return v.stride }

// Bytes reports the resident size of the code matrix.
func (v *QuantizedView) Bytes() int { return len(v.codes) }

// MaxScale reports the largest chunk scale, the argument QuantErrorBound
// pairs with this view's dimension.
func (v *QuantizedView) MaxScale() float64 { return v.maxScale }

// ErrorBound reports the view's additive distance-space error bound:
// |d(q,x) − √ô(q,x)| ≤ ErrorBound() for any stored row x and any query q
// inside the view's per-dimension envelope. It is at most
// QuantErrorBound(Dim(), MaxScale()).
func (v *QuantizedView) ErrorBound() float64 { return v.bound }

// quantCode rounds t half away from zero and clamps to [-127, 127].
// NaN (from Inf−Inf degeneracies upstream) encodes as 0.
func quantCode(t float64) int8 {
	switch {
	case t != t:
		return 0
	case t >= 127:
		return 127
	case t <= -127:
		return -127
	case t >= 0:
		return int8(int32(t + 0.5))
	default:
		return int8(int32(t - 0.5))
	}
}

// encodeRow quantizes one logical row into one padded code row. dst pad
// lanes must already be zero (freshly allocated or previously written by
// encodeRow, which zeroes them).
func (v *QuantizedView) encodeRow(row []float32, dst []int8) {
	for c := range v.chunkW {
		j0 := c * chunkDims
		w := v.chunkW[c]
		o := v.chunkO[c]
		inv := v.invs[c]
		off := v.offsets[j0 : j0+w]
		src := row[j0 : j0+w]
		out := dst[o : o+w]
		if inv == 0 {
			for j := range out {
				out[j] = 0
			}
		} else {
			for j, x := range src {
				out[j] = quantCode((float64(x) - off[j]) * inv)
			}
		}
		for j := w; j < v.chunkP[c]; j++ {
			dst[o+j] = 0
		}
	}
}

// QuantizeQuery encodes q with the view's parameters, growing dst (to
// Stride()) as needed, and returns it. Coordinates outside the view's
// envelope clamp to ±127 — ranking stays sensible but the ErrorBound
// contract no longer covers such queries; see the file comment.
func (v *QuantizedView) QuantizeQuery(q []float32, dst []int8) []int8 {
	if len(q) != v.dim {
		panic("metric: QuantizeQuery dimension mismatch")
	}
	if cap(dst) < v.stride {
		dst = make([]int8, v.stride)
	}
	dst = dst[:v.stride]
	v.encodeRow(q, dst)
	return dst
}

// resolveRows reports whether flat is a whole-row sub-block of the view's
// source buffer, and if so which row it starts at. The check is exact:
// the capped-slice arithmetic locates the candidate offset and a pointer
// comparison confirms the backing array, so false positives are
// impossible.
func (v *QuantizedView) resolveRows(flat []float32) (lo int, ok bool) {
	if len(v.src) == 0 || len(flat) == 0 || len(flat)%v.dim != 0 || cap(flat) > cap(v.src) {
		return 0, false
	}
	off := cap(v.src) - cap(flat)
	if off%v.dim != 0 || off+len(flat) > len(v.src) {
		return 0, false
	}
	if &v.src[off] != &flat[0] {
		return 0, false
	}
	return off / v.dim, true
}

// quantAccBlock bounds how many rows the scan kernels score per integer
// pass, so the int32 accumulator block stays stack-sized and hot.
const quantAccBlock = 512

// OrderingRange writes quantized squared-distance orderings from the
// encoded query qc (a QuantizeQuery result) to rows [lo, hi) of the view
// into out[:hi-lo].
func (v *QuantizedView) OrderingRange(qc []int8, lo, hi int, out []float64) {
	if lo < 0 || hi > v.n || lo > hi {
		panic("metric: OrderingRange rows out of range")
	}
	if len(qc) != v.stride {
		panic("metric: OrderingRange query not encoded by this view")
	}
	var acc [quantAccBlock]int32
	single := len(v.chunkW) == 1
	for b := lo; b < hi; b += quantAccBlock {
		be := b + quantAccBlock
		if be > hi {
			be = hi
		}
		rows := be - b
		o := out[b-lo : be-lo]
		if single {
			quantScanRows(qc, v.codes[b*v.stride:be*v.stride], v.stride, rows, acc[:rows])
			s2 := v.sqs[0]
			for i := 0; i < rows; i++ {
				o[i] = float64(acc[i]) * s2
			}
			continue
		}
		for i := range o {
			o[i] = 0
		}
		for c := range v.chunkW {
			co, cp := v.chunkO[c], v.chunkP[c]
			qcc := qc[co : co+cp]
			s2 := v.sqs[c]
			for i := 0; i < rows; i++ {
				row := v.codes[(b+i)*v.stride+co:]
				o[i] += float64(quantSqDiff(qcc, row[:cp])) * s2
			}
		}
	}
}

// OrderingIDs writes quantized orderings from qc to the listed rows:
// out[i] = ô(q, row ids[i]). The random-access companion of
// OrderingRange for candidate rescoring.
func (v *QuantizedView) OrderingIDs(qc []int8, ids []int32, out []float64) {
	if len(qc) != v.stride {
		panic("metric: OrderingIDs query not encoded by this view")
	}
	for i, id := range ids {
		row := v.codes[int(id)*v.stride : (int(id)+1)*v.stride]
		var s float64
		for c := range v.chunkW {
			co, cp := v.chunkO[c], v.chunkP[c]
			s += float64(quantSqDiff(qc[co:co+cp], row[co:co+cp])) * v.sqs[c]
		}
		out[i] = s
	}
}

// quantScanRows computes, for each of rows code rows of width stride
// (multiple of quantAlign) starting at codes[0], the int32 sum of squared
// code differences against qc[:stride]. Results are exact — integer
// accumulation cannot round — so the AVX2 and pure-Go paths agree
// bitwise.
func quantScanRows(qc, codes []int8, stride, rows int, out []int32) {
	if len(qc) < stride || len(codes) < rows*stride || len(out) < rows {
		panic("metric: quantScanRows buffer underflow")
	}
	if useQuantAsm {
		quantScanRowsAsm(qc, codes, stride, rows, out)
		return
	}
	quantScanRowsGo(qc, codes, stride, rows, out)
}

// quantSqDiff is the single-row form of quantScanRows.
func quantSqDiff(qc, row []int8) int32 {
	var out [1]int32
	quantScanRows(qc, row, len(qc), 1, out[:])
	return out[0]
}

// viewFor resolves the point block for a quantized Tile/Ordering call:
// the kernel's prebuilt view when flat is a whole-row sub-block of its
// source (lo is the starting row), otherwise a transient view quantized
// on the fly — correct, but it pays the O(rows·dim) encode per call, so
// hot paths arrange to hit the prebuilt case.
func (k *Kernel) viewFor(flat []float32, dim int) (v *QuantizedView, lo int) {
	if k.qv != nil && k.qv.dim == dim {
		if lo, ok := k.qv.resolveRows(flat); ok {
			return k.qv, lo
		}
	}
	return NewQuantizedView(flat, dim), 0
}

func (k *Kernel) quantTile(qflat, pflat []float32, dim, nq, np int, out []float64, ts *TileScratch) {
	v, lo := k.viewFor(pflat, dim)
	if ts == nil {
		ts = GetTileScratch()
		defer PutTileScratch(ts)
	}
	for i := 0; i < nq; i++ {
		ts.qc = v.QuantizeQuery(qflat[i*dim:(i+1)*dim], ts.qc)
		v.OrderingRange(ts.qc, lo, lo+np, out[i*np:(i+1)*np])
	}
}

// qcPool recycles encoded-query buffers for the scratchless Ordering
// path (leaf scans quantize the query once per call).
var qcPool = sync.Pool{New: func() any { return new([]int8) }}

func (k *Kernel) quantOrdering(q, flat []float32, dim int, out []float64) {
	v, lo := k.viewFor(flat, dim)
	buf := qcPool.Get().(*[]int8)
	qc := v.QuantizeQuery(q, *buf)
	v.OrderingRange(qc, lo, lo+len(flat)/dim, out)
	*buf = qc
	qcPool.Put(buf)
}

// quantScanRowsGo is the portable reference loop: four int32 lanes of
// (int8 − int8)² accumulation. Each lane sums at most chunkDims/4 terms
// of ≤ 254², far inside int32 range.
func quantScanRowsGo(qc, codes []int8, stride, rows int, out []int32) {
	for r := 0; r < rows; r++ {
		row := codes[r*stride : (r+1)*stride]
		q := qc[:len(row)]
		var a0, a1, a2, a3 int32
		j := 0
		for ; j+4 <= len(q); j += 4 {
			d0 := int32(q[j]) - int32(row[j])
			d1 := int32(q[j+1]) - int32(row[j+1])
			d2 := int32(q[j+2]) - int32(row[j+2])
			d3 := int32(q[j+3]) - int32(row[j+3])
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
		}
		for ; j < len(q); j++ {
			d := int32(q[j]) - int32(row[j])
			a0 += d * d
		}
		out[r] = a0 + a1 + a2 + a3
	}
}
