package metric

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
)

// TestMain reports the resolved tile shape when RBC_REPORT_TILESHAPE is
// set, so bench runs can record the shape that produced their numbers
// (cmd/benchcmp parses the "autotile:" line into the baseline artifact).
func TestMain(m *testing.M) {
	if os.Getenv("RBC_REPORT_TILESHAPE") != "" {
		b, src := TileBudget()
		tq64, tp64 := AutoTileShape(64)
		tq256, tp256 := AutoTileShape(256)
		fmt.Printf("autotile: budget=%d source=%s dim64=%dx%d dim256=%dx%d\n",
			b, src, tq64, tp64, tq256, tp256)
	}
	os.Exit(m.Run())
}

// setBudgetForTest pins the budget and returns a restore func, so
// process-global autotile state cannot leak between tests.
func setBudgetForTest(t *testing.T, budget int) {
	t.Helper()
	autoTile.mu.Lock()
	prevB, prevS := autoTile.budget, autoTile.source
	autoTile.mu.Unlock()
	SetTileBudget(budget)
	t.Cleanup(func() {
		autoTile.mu.Lock()
		autoTile.budget, autoTile.source = prevB, prevS
		autoTile.mu.Unlock()
	})
}

// TestShapeForBudgetDefaultMatchesTileShape: the refactor must preserve
// the historical fixed shapes exactly — TileShape is the compatibility
// surface other packages' baselines were tuned against.
func TestShapeForBudgetDefaultMatchesTileShape(t *testing.T) {
	for dim := 1; dim <= 8192; dim = dim*2 + 1 {
		tq, tp := TileShape(dim)
		btq, btp := shapeForBudget(defaultTileBudget, dim)
		if tq != btq || tp != btp {
			t.Fatalf("dim=%d: TileShape %dx%d, shapeForBudget(default) %dx%d", dim, tq, tp, btq, btp)
		}
	}
	// Spot-check the historical values so a silent change to
	// shapeForBudget cannot take TileShape with it.
	for _, c := range []struct{ dim, tq, tp int }{
		{64, 32, 256}, {256, 32, 64}, {784, 16, 20}, {4099, 4, 16},
	} {
		tq, tp := TileShape(c.dim)
		if tq != c.tq || tp != c.tp {
			t.Fatalf("dim=%d: TileShape %dx%d, want historical %dx%d", c.dim, tq, tp, c.tq, c.tp)
		}
	}
}

// TestTileBudgetClamp: env overrides and measurement results are clamped
// into the range the tiled loops handle.
func TestTileBudgetClamp(t *testing.T) {
	if got := clampTileBudget(1); got != minTileBudget {
		t.Fatalf("clamp(1) = %d, want %d", got, minTileBudget)
	}
	if got := clampTileBudget(1 << 30); got != maxTileBudget {
		t.Fatalf("clamp(1<<30) = %d, want %d", got, maxTileBudget)
	}
	if got := clampTileBudget(defaultTileBudget); got != defaultTileBudget {
		t.Fatalf("clamp(default) = %d, want %d", got, defaultTileBudget)
	}
}

// TestSetTileBudgetPins: SetTileBudget overrides the resolved budget and
// AutoTileShape follows it.
func TestSetTileBudgetPins(t *testing.T) {
	setBudgetForTest(t, 32768)
	b, src := TileBudget()
	if b != 32768 || src != "param" {
		t.Fatalf("TileBudget = %d/%q, want 32768/param", b, src)
	}
	tq, tp := AutoTileShape(64)
	wtq, wtp := shapeForBudget(32768, 64)
	if tq != wtq || tp != wtp {
		t.Fatalf("AutoTileShape(64) = %dx%d, want %dx%d", tq, tp, wtq, wtp)
	}
}

// TestMeasureTileBudgetInGrid: the micro-measurement must pick a budget
// from the grid (and terminate quickly enough to run in tests).
func TestMeasureTileBudgetInGrid(t *testing.T) {
	b := measureTileBudget()
	for _, g := range tileBudgetGrid {
		if b == g {
			return
		}
	}
	t.Fatalf("measureTileBudget = %d, not in grid %v", b, tileBudgetGrid)
}

// TestTileShapeInvarianceUnderBudgets: every kernel grade must produce
// bit-identical tiles regardless of the tile shape consumers sweep with —
// so an AutoTileShape override can never change answers. Emulates the
// consumer loop at each grid budget and compares against the one-shot
// full tile.
func TestTileShapeInvarianceUnderBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	const dim, nq, np = 33, 9, 41
	qflat := randFlat(rng, nq, dim)
	pflat := randFlat(rng, np, dim)
	for _, k := range []*Kernel{
		NewKernel(Euclidean{}),
		NewFastKernel(Euclidean{}),
		NewChunkedKernel(Euclidean{}),
	} {
		qn := k.Norms(qflat, dim, nil)
		pn := k.Norms(pflat, dim, nil)
		want := make([]float64, nq*np)
		k.Tile(qflat, qn, pflat, pn, dim, want, nil)
		for _, budget := range tileBudgetGrid {
			tq, tp := shapeForBudget(budget, dim)
			got := make([]float64, nq*np)
			sub := make([]float64, tq*tp)
			for q0 := 0; q0 < nq; q0 += tq {
				q1 := min(q0+tq, nq)
				for p0 := 0; p0 < np; p0 += tp {
					p1 := min(p0+tp, np)
					bq, bp := q1-q0, p1-p0
					var sqn, spn []float64
					if qn != nil {
						sqn, spn = qn[q0:q1], pn[p0:p1]
					}
					k.Tile(qflat[q0*dim:q1*dim], sqn, pflat[p0*dim:p1*dim], spn, dim, sub[:bq*bp], nil)
					for i := 0; i < bq; i++ {
						copy(got[(q0+i)*np+p0:(q0+i)*np+p1], sub[i*bp:(i+1)*bp])
					}
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("budget=%d pair %d: tiled %v, full %v", budget, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGramOrderingSlackBounds: the certified slack must dominate the
// actual gram-vs-exact ordering discrepancy, including on tie-rich grids
// (duplicates, where cancellation is exact) and across magnitude scales.
func TestGramOrderingSlackBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	exact := NewKernel(Euclidean{})
	gram := NewFastKernel(Euclidean{})
	for _, dim := range []int{1, 3, 17, 64, 784} {
		for _, scale := range []float32{1e-3, 1, 1e3} {
			const nq, np = 6, 24
			qflat := randFlat(rng, nq, dim)
			pflat := randFlat(rng, np, dim)
			for i := range qflat {
				qflat[i] *= scale
			}
			for i := range pflat {
				pflat[i] *= scale
			}
			// Tie-rich: copy some queries into the point set so exact
			// zeros and near-duplicates are exercised.
			copy(pflat[0:dim], qflat[0:dim])
			copy(pflat[dim:2*dim], qflat[0:dim])
			qn := gram.Norms(qflat, dim, nil)
			pn := gram.Norms(pflat, dim, nil)
			ge := make([]float64, nq*np)
			ex := make([]float64, nq*np)
			gram.Tile(qflat, qn, pflat, pn, dim, ge, nil)
			exact.Tile(qflat, nil, pflat, nil, dim, ex, nil)
			for i := 0; i < nq; i++ {
				for j := 0; j < np; j++ {
					slack := GramOrderingSlack(dim, qn[i], pn[j])
					diff := math.Abs(ge[i*np+j] - ex[i*np+j])
					if diff > slack {
						t.Fatalf("dim=%d scale=%g pair (%d,%d): |gram-exact| = %g exceeds slack %g",
							dim, scale, i, j, diff, slack)
					}
				}
			}
		}
	}
}
