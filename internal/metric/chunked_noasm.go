//go:build !amd64

package metric

// chunkedBody4 runs the aligned chunk body for four rows at once through
// the portable lane loop. lanes must be zeroed by the caller; nb is a
// multiple of 8.
func chunkedBody4(q, r0, r1, r2, r3 []float32, nb int, lanes *[4][8]float32) {
	if nb == 0 {
		return
	}
	chunkedBodyGo(q, r0, nb, &lanes[0])
	chunkedBodyGo(q, r1, nb, &lanes[1])
	chunkedBodyGo(q, r2, nb, &lanes[2])
	chunkedBodyGo(q, r3, nb, &lanes[3])
}
