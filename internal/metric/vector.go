package metric

import (
	"fmt"
	"math"
)

// Euclidean is the l2 metric, the distance used for all of the paper's
// experiments. Accumulation is in float64 so that exactness tests against
// brute force are tie-stable on float32 data.
type Euclidean struct{}

// Distance implements Metric.
func (Euclidean) Distance(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Distances implements Batch with a 4-way unrolled inner loop.
func (e Euclidean) Distances(q []float32, flat []float32, dim int, out []float64) {
	e.OrderingDistances(q, flat, dim, out)
	for i := range out {
		out[i] = math.Sqrt(out[i])
	}
}

// OrderingDistances implements OrderingBatch: squared distances with the
// same accumulation as Distances, the sqrt deferred to the caller.
func (Euclidean) OrderingDistances(q []float32, flat []float32, dim int, out []float64) {
	for i := range out {
		row := flat[i*dim : (i+1)*dim]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := float64(q[j]) - float64(row[j])
			d1 := float64(q[j+1]) - float64(row[j+1])
			d2 := float64(q[j+2]) - float64(row[j+2])
			d3 := float64(q[j+3]) - float64(row[j+3])
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; j < dim; j++ {
			d := float64(q[j]) - float64(row[j])
			s0 += d * d
		}
		out[i] = s0 + s1 + s2 + s3
	}
}

// ToDistance implements Orderer: the ordering distance is the square.
func (Euclidean) ToDistance(o float64) float64 { return math.Sqrt(o) }

// FromDistance implements Orderer.
func (Euclidean) FromDistance(d float64) float64 { return d * d }

// MultiDistances implements BatchMulti with the cache-blocked Gram kernel
// (squared-distance ordering; norms computed per call). Callers that reuse
// a point set across calls should go through Kernel with precomputed norms.
func (Euclidean) MultiDistances(qflat, pflat []float32, dim int, out []float64) {
	NewFastKernel(Euclidean{}).Tile(qflat, nil, pflat, nil, dim, out, nil)
}

// Manhattan is the l1 metric — the metric under which the paper's grid
// example has expansion rate exactly 2^d.
type Manhattan struct{}

// Distance implements Metric.
func (Manhattan) Distance(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// OrderingDistances implements OrderingBatch; the l1 ordering distance is
// the distance itself.
func (m Manhattan) OrderingDistances(q []float32, flat []float32, dim int, out []float64) {
	m.Distances(q, flat, dim, out)
}

// Distances implements Batch.
func (Manhattan) Distances(q []float32, flat []float32, dim int, out []float64) {
	for i := range out {
		row := flat[i*dim : (i+1)*dim]
		var s float64
		for j := 0; j < dim; j++ {
			s += math.Abs(float64(q[j]) - float64(row[j]))
		}
		out[i] = s
	}
}

// Chebyshev is the l-infinity metric.
type Chebyshev struct{}

// Distance implements Metric.
func (Chebyshev) Distance(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// OrderingDistances implements OrderingBatch; the l∞ ordering distance is
// the distance itself.
func (c Chebyshev) OrderingDistances(q []float32, flat []float32, dim int, out []float64) {
	c.Distances(q, flat, dim, out)
}

// Distances implements Batch.
func (Chebyshev) Distances(q []float32, flat []float32, dim int, out []float64) {
	for i := range out {
		row := flat[i*dim : (i+1)*dim]
		var m float64
		for j := 0; j < dim; j++ {
			d := math.Abs(float64(q[j]) - float64(row[j]))
			if d > m {
				m = d
			}
		}
		out[i] = m
	}
}

// Minkowski is the lp metric for p >= 1. p < 1 does not satisfy the
// triangle inequality, so the constructor rejects it.
type Minkowski struct {
	P float64
}

// NewMinkowski returns the lp metric. It panics if p < 1.
func NewMinkowski(p float64) Minkowski {
	if p < 1 {
		panic(fmt.Sprintf("metric: Minkowski p=%v is not a metric (need p >= 1)", p))
	}
	return Minkowski{P: p}
}

// Distance implements Metric.
func (m Minkowski) Distance(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(float64(a[i])-float64(b[i])), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name implements Metric.
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski(p=%g)", m.P) }

// OrderingDistances implements OrderingBatch: the lp ordering distance is
// the p-th power sum, leaving the final root to the API boundary.
func (m Minkowski) OrderingDistances(q []float32, flat []float32, dim int, out []float64) {
	for i := range out {
		row := flat[i*dim : (i+1)*dim]
		var s float64
		for j := 0; j < dim; j++ {
			s += math.Pow(math.Abs(float64(q[j])-float64(row[j])), m.P)
		}
		out[i] = s
	}
}

// Distances implements Batch, sharing the power-sum loop with
// OrderingDistances so batch and scalar paths agree.
func (m Minkowski) Distances(q []float32, flat []float32, dim int, out []float64) {
	m.OrderingDistances(q, flat, dim, out)
	inv := 1 / m.P
	for i := range out {
		out[i] = math.Pow(out[i], inv)
	}
}

// ToDistance implements Orderer.
func (m Minkowski) ToDistance(o float64) float64 { return math.Pow(o, 1/m.P) }

// FromDistance implements Orderer.
func (m Minkowski) FromDistance(d float64) float64 { return math.Pow(d, m.P) }

// Angular is the angle between vectors in radians: a proper metric on the
// unit sphere (unlike raw cosine "distance", which violates the triangle
// inequality). Zero vectors are treated as orthogonal to everything.
type Angular struct{}

// Distance implements Metric.
func (Angular) Distance(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return math.Pi / 2
	}
	c := dot / math.Sqrt(na*nb)
	// Clamp against floating-point drift before acos.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Name implements Metric.
func (Angular) Name() string { return "angular" }
