// Package metric defines the distance abstractions used by the RBC, the
// brute-force primitive and the baselines.
//
// The paper's algorithms work over arbitrary metric spaces, so the central
// type is the generic Metric[P] interface. Dense float32 vectors get two
// fast paths:
//
//   - Batch: distances from one query to a contiguous block of points
//     (the matrix-vector shape), plus OrderingBatch, its squared-distance
//     companion;
//   - BatchMulti: distances from a block of queries to a block of points
//     into a row-major tile (the matrix-matrix shape of BF(Q,X)), resolved
//     per metric through the Kernel type.
//
// The tile kernels work in *ordering distance* space — a strictly monotone
// surrogate of the distance (squared for l2) that keeps the inner loop
// FMA-shaped — with conversion at the API boundary via the Orderer
// interface.
//
// # Kernel grades
//
// Four kernel grades exist, trading reproducibility for throughput:
//
//   - exact: bit-reproducible float64 diff-square accumulation. The
//     reference grade; all reported distances come from here.
//   - Gram-fast: float64 Gram decomposition ‖q‖²+‖p‖²−2q·p over cached
//     norms; drifts from exact by at most GramOrderingSlack, so consumers
//     can bracket its orderings and make prune decisions that provably
//     agree with the exact grade.
//   - chunked: 8-lane float32 accumulation in chunks of at most 2¹¹
//     dims, folded to float64 per chunk; relative error bounded by
//     ChunkedErrorBound. Above a small point count the row scan is
//     register-blocked — four point columns per query pass sharing one
//     query load (AVX2 on amd64, pure Go elsewhere) — with the lane
//     structure untouched, so blocked and unblocked rows are
//     bit-identical and Tile≡Ordering still holds. See chunked.go for
//     both derivations.
//   - quantized: int8 codes with integer MAC (AVX2 on amd64) plus exact
//     rescoring; see quant.go.
//
// See multi.go for the ordering contract and grade dispatch.
//
// # Tile shape autotuning
//
// The tiled consumer loops size their tiles via AutoTileShape, which
// resolves a per-tile footprint budget once per process: a valid
// RBC_TILE_BUDGET env var pins it (the reproducibility hook — CI and
// bench baselines set it so shape changes never masquerade as kernel
// regressions); otherwise a micro-measurement over a small budget grid
// picks the fastest shape for the host (~ms, once). TileBudget reports
// the resolved value and its provenance for bench artifacts; TileShape
// remains as the fixed historical reference shape. Shape can never
// change results: every grade is tile-shape invariant by construction,
// and the invariance tests sweep the full grid. See autotile.go.
package metric
