package harness

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metric"
)

// tinyConfig keeps harness tests fast: the smallest usable workloads.
func tinyConfig() Config {
	return Config{Scale: 1e-9, Queries: 24, Seed: 7, RepFactor: 2, GPUCap: 400, CoverTreeCap: 400}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.01 || c.Queries != 200 || c.Seed == 0 || c.RepFactor != 2 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestRegistryAndByID(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry size %d", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"table1", "fig1", "fig2", "table2", "table3", "fig3"} {
		if _, err := ByID(id); err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("bogus"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestWorkloadSplitsQueries(t *testing.T) {
	cfg := tinyConfig()
	entry, err := dataset.ByName("robot")
	if err != nil {
		t.Fatal(err)
	}
	db, queries := workload(entry, cfg, 0)
	if db.N() != 256 { // scale floor
		t.Fatalf("db n=%d", db.N())
	}
	if queries.N() != cfg.Queries {
		t.Fatalf("queries n=%d", queries.N())
	}
	if db.Dim != queries.Dim {
		t.Fatal("dim mismatch")
	}
	capped, _ := workload(entry, cfg, 100)
	if capped.N() != 100 {
		t.Fatalf("cap: %d", capped.N())
	}
}

func TestTable1Runs(t *testing.T) {
	out, err := RunTable1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || out.Tables[0].NumRows() != 8 {
		t.Fatalf("table1 shape: %+v", out.Tables[0])
	}
	text := out.Tables[0].String()
	for _, name := range []string{"bio", "cov", "phy", "robot", "tiny4", "tiny32"} {
		if !strings.Contains(text, name) {
			t.Fatalf("missing %s:\n%s", name, text)
		}
	}
}

func TestFig2RunsAndShowsSpeedup(t *testing.T) {
	out, err := RunFig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	if tb.NumRows() != 8 {
		t.Fatalf("fig2 rows: %d", tb.NumRows())
	}
}

func TestFig1Runs(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	out, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Charts) != 1 {
		t.Fatal("fig1 should emit a chart")
	}
	if out.Tables[0].NumRows() != 8*len(fig1Factors) {
		t.Fatalf("fig1 rows: %d", out.Tables[0].NumRows())
	}
}

func TestTable2Runs(t *testing.T) {
	cfg := tinyConfig()
	cfg.GPUCap = 300
	out, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 8 {
		t.Fatalf("table2 rows: %d", out.Tables[0].NumRows())
	}
}

func TestTable3Runs(t *testing.T) {
	out, err := RunTable3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 8 {
		t.Fatalf("table3 rows: %d", out.Tables[0].NumRows())
	}
}

func TestFig3Runs(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	out, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 8*len(fig3Factors) {
		t.Fatalf("fig3 rows: %d", out.Tables[0].NumRows())
	}
	if len(out.Charts) != 1 {
		t.Fatal("fig3 should emit a chart")
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	if _, err := RunAblationBounds(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAblationEarlyExit(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScalingRuns(t *testing.T) {
	out, err := RunScaling(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() < 1 {
		t.Fatal("scaling table empty")
	}
}

func TestDistributedRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 12
	out, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 10 { // 5 shard counts × 2 modes
		t.Fatalf("distributed rows: %d", out.Tables[0].NumRows())
	}
}

func TestDistWindowRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 12
	out, err := RunDistWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 4 { // 2 k values × 2 modes
		t.Fatalf("dist-window rows: %d", out.Tables[0].NumRows())
	}
}

func TestBaselinesRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	out, err := RunBaselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 2 {
		t.Fatalf("baselines rows: %d", out.Tables[0].NumRows())
	}
}

func TestAblationApproxRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	out, err := RunAblationApprox(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 8 { // 2 datasets x 4 eps values
		t.Fatalf("approx rows: %d", out.Tables[0].NumRows())
	}
}

func TestLSHCompareRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	out, err := RunLSHCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 12 { // 2 datasets x (3 rbc + 3 lsh)
		t.Fatalf("lsh-compare rows: %d", out.Tables[0].NumRows())
	}
}

func TestGPUDivergenceRuns(t *testing.T) {
	cfg := tinyConfig()
	out, err := RunGPUDivergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 6 {
		t.Fatalf("divergence rows: %d", out.Tables[0].NumRows())
	}
}

func TestQuantSweepRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 8
	cfg.QuantSweepCap = 2000 // both sweep sizes collapse to one capped row
	out, err := RunQuantSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != 1 {
		t.Fatalf("quant-sweep rows: %d", out.Tables[0].NumRows())
	}
	if len(out.Charts) != 1 {
		t.Fatal("quant-sweep should emit a chart")
	}
}

func TestQuantizedKernelGradeAccepted(t *testing.T) {
	cfg := tinyConfig()
	cfg.Kernel = "quantized"
	if g, err := cfg.Grade(); err != nil || g != metric.GradeQuantized {
		t.Fatalf("grade: %v, %v", g, err)
	}
	cfg.Queries = 16
	if _, err := RunFig1(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig2(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLSHCompare(cfg); err != nil {
		t.Fatal(err)
	}
}
