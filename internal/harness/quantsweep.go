package harness

import (
	"math"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/stats"
)

// quantSweepNs are the database sizes swept (capped by
// Config.QuantSweepCap): 100k sits near the last-level-cache boundary,
// 1M is firmly DRAM-resident at dim 64 — the regime where the float32
// scan is bandwidth-bound and the 4×-smaller int8 codes pull ahead.
var quantSweepNs = []int{100_000, 1_000_000}

const quantSweepDim = 64

// RunQuantSweep measures the chunked-float32 vs int8-quantized crossover
// as n grows at fixed dimension: per-query wall time of the k-NN
// brute-force scan on each kernel, the quantized encode cost, and the
// footprint of each representation. The corpora are generated with the
// streaming dataset generator, so the peak footprint is the data itself
// (workload()'s generate-then-Subset pattern would double it at n = 1M).
func RunQuantSweep(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	const k = 10
	nq := cfg.Queries
	if nq > 16 {
		nq = 16 // the scans dominate; a handful of queries times them fine
	}
	t := stats.NewTable("Quantized kernel n-sweep (dim 64, k=10 brute-force scan)",
		"n", "f32 MB", "int8 MB", "encode s", "chunked ms/q", "quantized ms/q", "speedup")
	chart := stats.NewChart("Quantized vs chunked scan time by n (log-log)",
		"database size n", "scan ms per query")
	chart.LogX, chart.LogY = true, true
	var xs, chunkedYs, quantYs []float64
	seen := map[int]bool{}
	for _, base := range quantSweepNs {
		n := base
		if n > cfg.QuantSweepCap {
			n = cfg.QuantSweepCap
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		db, queries := dataset.UniformStream(quantSweepDim, cfg.Seed).Split(n, nq)
		var v *metric.QuantizedView
		encodeSec := timeIt(func() { v = metric.NewQuantizedView(db.Data, db.Dim) })
		// Best of three: scan times at this scale are stable, but the
		// first touch pays page faults.
		best := func(f func()) float64 {
			b := math.Inf(1)
			for r := 0; r < 3; r++ {
				if s := timeIt(f); s < b {
					b = s
				}
			}
			return b
		}
		chunkedSec := best(func() { bruteforce.SearchKChunked(queries, db, k, euclid, nil) })
		quantSec := best(func() { bruteforce.SearchKQuantizedView(queries, db, k, v, euclid, nil) })
		perQ := 1e3 / float64(nq)
		t.AddRow(n,
			float64(len(db.Data)*4)/(1<<20), float64(v.Bytes())/(1<<20),
			encodeSec, chunkedSec*perQ, quantSec*perQ, chunkedSec/quantSec)
		xs = append(xs, float64(n))
		chunkedYs = append(chunkedYs, chunkedSec*perQ)
		quantYs = append(quantYs, quantSec*perQ)
	}
	chart.Add("chunked f32", xs, chunkedYs)
	chart.Add("quantized int8", xs, quantYs)
	return &Output{Tables: []*stats.Table{t}, Charts: []*stats.Chart{chart}}, nil
}
