package harness

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/gpusim"
	"repro/internal/kdtree"
	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/stats"
)

// This file holds the experiments beyond the paper's figures: the
// ablations its text motivates and the extensions its conclusion
// proposes. See DESIGN.md §2 "Extra experiments".

// RunAblationBounds quantifies the §6 remark that "the simultaneous use
// of both inequalities improved the empirical performance": per-query
// work with rule (1), rule (2), and both.
func RunAblationBounds(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	t := stats.NewTable("Ablation: pruning rules (evals per query)",
		"dataset", "psi only", "triple only", "both", "both+window")
	variants := []core.ExactParams{
		{PrunePsi: true},
		{PruneTriple: true},
		{PrunePsi: true, PruneTriple: true},
		{PrunePsi: true, PruneTriple: true, EarlyExit: true},
	}
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, cfg, 0)
		n := db.N()
		nr := int(cfg.RepFactor * math.Sqrt(float64(n)))
		row := make([]interface{}, 0, 5)
		row = append(row, e.Name)
		for _, v := range variants {
			v.NumReps, v.Seed, v.ExactCount = nr, cfg.Seed, true
			idx, err := core.BuildExact(db, euclid, v)
			if err != nil {
				return nil, err
			}
			_, st := idx.Search(queries)
			row = append(row, float64(st.TotalEvals())/float64(queries.N()))
		}
		t.AddRow(row...)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunAblationEarlyExit isolates the sorted-list admissible-window
// refinement (Claim 2): same index, window on vs off.
func RunAblationEarlyExit(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	t := stats.NewTable("Ablation: admissible window (Claim 2)",
		"dataset", "evals/q (off)", "evals/q (on)", "reduction")
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, cfg, 0)
		nr := int(cfg.RepFactor * math.Sqrt(float64(db.N())))
		run := func(early bool) float64 {
			idx, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: early})
			if err != nil {
				return math.NaN()
			}
			_, st := idx.Search(queries)
			return float64(st.TotalEvals()) / float64(queries.N())
		}
		off, on := run(false), run(true)
		t.AddRow(e.Name, off, on, fmt.Sprintf("%.1f%%", 100*(off-on)/off))
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunScaling measures exact-RBC batch query throughput against
// GOMAXPROCS — the "48-core machine" axis of §7.2, which reports real
// scaling only when run on a multicore host. The previous GOMAXPROCS is
// restored on exit.
func RunScaling(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	e, err := dataset.ByName("robot")
	if err != nil {
		return nil, err
	}
	db, queries := workload(e, cfg, 0)
	nr := int(cfg.RepFactor * math.Sqrt(float64(db.N())))
	idx, err := core.BuildExact(db, euclid, core.ExactParams{
		NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: true})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Scaling: robot workload, n=%d, host cores=%d", db.N(), prev),
		"GOMAXPROCS", "queries/sec", "speedup vs 1")
	var base float64
	for p := 1; p <= prev; p *= 2 {
		runtime.GOMAXPROCS(p)
		sec := timeIt(func() { idx.Search(queries) })
		qps := float64(queries.N()) / sec
		if p == 1 {
			base = qps
		}
		t.AddRow(p, qps, qps/base)
		if p == prev {
			break
		}
		if 2*p > prev {
			runtime.GOMAXPROCS(prev)
			sec := timeIt(func() { idx.Search(queries) })
			qps := float64(queries.N()) / sec
			t.AddRow(prev, qps, qps/base)
			break
		}
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunDistributed evaluates the §8 proposal: representative-sharded RBC
// routing vs broadcast brute force across shard counts, reporting
// communication and simulated latency.
func RunDistributed(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	e, err := dataset.ByName("robot")
	if err != nil {
		return nil, err
	}
	db, queries := workload(e, cfg, 0)
	nr := int(cfg.RepFactor * math.Sqrt(float64(db.N())))
	t := stats.NewTable(fmt.Sprintf("Distributed RBC (robot, n=%d): routed vs broadcast", db.N()),
		"shards", "mode", "shards/query", "evals/query", "KB/query", "sim ms/query")
	for _, shards := range []int{1, 2, 4, 8, 16} {
		cl, err := distributed.Build(db, euclid, core.ExactParams{
			NumReps: nr, Seed: cfg.Seed, ExactCount: true}, shards, distributed.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		var routed, broadcast distributed.QueryMetrics
		for i := 0; i < queries.N(); i++ {
			r, mr, _ := cl.Query(queries.Row(i))
			b, mb, _ := cl.QueryBroadcast(queries.Row(i))
			if r.Dist != b.Dist {
				cl.Close()
				return nil, fmt.Errorf("distributed: routed answer diverged at query %d", i)
			}
			routed.Add(mr)
			broadcast.Add(mb)
		}
		cl.Close()
		q := float64(queries.N())
		t.AddRow(shards, "routed",
			float64(routed.ShardsContacted)/q, float64(routed.Evals)/q,
			float64(routed.Bytes)/q/1024, routed.SimTimeUS/q/1000)
		t.AddRow(shards, "broadcast",
			float64(broadcast.ShardsContacted)/q, float64(broadcast.Evals)/q,
			float64(broadcast.Bytes)/q/1024, broadcast.SimTimeUS/q/1000)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunDistBatch measures what the tiled, batched shard scans buy on the
// distributed cluster: the same k-NN workload driven one query at a time
// versus as whole blocks, reporting wall-clock throughput alongside the
// messaging and simulated-latency amortization. Results are bit-identical
// between the two modes by the shard-scan contract, so the table is a
// pure cost comparison.
func RunDistBatch(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	e, err := dataset.ByName("robot")
	if err != nil {
		return nil, err
	}
	db, queries := workload(e, cfg, 0)
	nr := int(cfg.RepFactor * math.Sqrt(float64(db.N())))
	const shards = 8
	cl, err := distributed.Build(db, euclid, core.ExactParams{
		NumReps: nr, Seed: cfg.Seed, ExactCount: true}, shards, distributed.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	t := stats.NewTable(
		fmt.Sprintf("Distributed batch scans (robot, n=%d, %d shards): per-query vs block fan-out", db.N(), shards),
		"k", "mode", "queries/sec", "msgs/query", "evals/query", "sim ms/query")
	q := float64(queries.N())
	for _, k := range []int{1, 10} {
		var perQuery distributed.QueryMetrics
		perSec := timeIt(func() {
			for i := 0; i < queries.N(); i++ {
				_, m, _ := cl.KNN(queries.Row(i), k)
				perQuery.Add(m)
			}
		})
		var batch distributed.QueryMetrics
		batchSec := timeIt(func() {
			_, batch, _ = cl.KNNBatch(queries, k)
		})
		t.AddRow(k, "per-query", q/perSec,
			float64(perQuery.Messages)/q, float64(perQuery.Evals)/q, perQuery.SimTimeUS/q/1000)
		t.AddRow(k, "batched", q/batchSec,
			float64(batch.Messages)/q, float64(batch.Evals)/q, batch.SimTimeUS/q/1000)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunDistWindow measures the shard-side EarlyExit windows: the same
// routed k-NN block workload on a full-scan cluster versus one whose
// segments are sorted and whose requests ship per-(query, segment)
// admissible windows. Answers are bit-identical by the window contract
// (verified here per block), so the table is a pure cost comparison:
// shard PointEvals saved against the 16-byte-per-window protocol
// overhead.
func RunDistWindow(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	e, err := dataset.ByName("robot")
	if err != nil {
		return nil, err
	}
	db, queries := workload(e, cfg, 0)
	nr := int(cfg.RepFactor * math.Sqrt(float64(db.N())))
	const shards = 8
	prm := core.ExactParams{NumReps: nr, Seed: cfg.Seed, ExactCount: true}
	full, err := distributed.Build(db, euclid, prm, shards, distributed.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	defer full.Close()
	prm.EarlyExit = true
	win, err := distributed.Build(db, euclid, prm, shards, distributed.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	defer win.Close()
	t := stats.NewTable(
		fmt.Sprintf("Distributed EarlyExit windows (robot, n=%d, %d shards): full scan vs windowed", db.N(), shards),
		"k", "mode", "point evals/query", "evals ratio", "window KB/query", "empty windows/query")
	q := float64(queries.N())
	for _, k := range []int{1, 10} {
		fres, fm, _ := full.KNNBatch(queries, k)
		wres, wm, _ := win.KNNBatch(queries, k)
		for i := range fres {
			for p := range fres[i] {
				if fres[i][p] != wres[i][p] {
					return nil, fmt.Errorf("dist-window: windowed answer diverged at query %d pos %d", i, p)
				}
			}
		}
		t.AddRow(k, "full-scan", float64(fm.PointEvals)/q, 1.0, 0.0, 0.0)
		t.AddRow(k, "windowed", float64(wm.PointEvals)/q,
			float64(wm.PointEvals)/float64(fm.PointEvals),
			float64(wm.Windows)*distributed.WindowBytes/q/1024, float64(wm.EmptyWindows)/q)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunBaselines compares every implemented search structure on one low-
// and one higher-dimensional workload — quantifying §7.1's remark that
// "in very low-dimensional spaces, basic data structures like kd-trees
// are extremely effective, hence the challenging cases are data that is
// somewhat higher dimensional".
func RunBaselines(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	t := stats.NewTable("Baselines: distance evaluations per query (lower is better)",
		"dataset", "dim", "brute", "kdtree", "covertree", "rbc exact")
	for _, name := range []string{"tiny4", "bio"} {
		e, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		db, queries := workload(e, cfg, cfg.CoverTreeCap)
		n := db.N()
		q := float64(queries.N())

		kt := kdtree.Build(db, 16)
		for i := 0; i < queries.N(); i++ {
			kt.NN(queries.Row(i))
		}
		ktEvals := float64(kt.DistEvals) / q

		ct := covertree.Build(db.Rows(), metric.Metric[[]float32](euclid))
		ct.DistEvals = 0
		for i := 0; i < queries.N(); i++ {
			ct.NN(queries.Row(i))
		}
		ctEvals := float64(ct.DistEvals) / q

		nr := int(cfg.RepFactor * math.Sqrt(float64(n)))
		idx, err := core.BuildExact(db, euclid, core.ExactParams{
			NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: true})
		if err != nil {
			return nil, err
		}
		_, st := idx.Search(queries)
		t.AddRow(name, db.Dim, n, ktEvals, ctEvals, float64(st.TotalEvals())/q)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunLSHCompare puts the one-shot RBC against locality-sensitive hashing
// — the other sublinear line of work §2 discusses. Both are approximate;
// the table reports recall and work side by side across parameter
// settings, illustrating the paper's point that LSH's behaviour is
// parameter-sensitive while the RBC has a single forgiving knob.
func RunLSHCompare(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	grade, err := cfg.Grade()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("One-shot RBC vs E2LSH (approximate 1-NN)",
		"dataset", "method", "params", "recall", "evals/query")
	euclidM := euclid
	for _, name := range []string{"robot", "tiny8"} {
		e, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		db, queries := workload(e, cfg, 0)
		n := db.N()
		want := bruteforce.Search(queries, db, euclidM, nil)
		truth := make([]float64, queries.N())
		for i, r := range want {
			truth[i] = r.Dist
		}
		// The one-shot index reports exact-kernel distances whatever the
		// phase-1 grade, so its recall stays a bit comparison; LSH's
		// reported distances inherit the rescoring grade, so recall under
		// the chunked grade tolerates its documented relative error. The
		// quantized grade needs no tolerance: its two-pass rescoring
		// reports exact-kernel distances.
		tol := 0.0
		if grade == metric.GradeChunked {
			tol = metric.ChunkedErrorBound(db.Dim)
		}
		hit := func(got, want float64) bool {
			return got == want || math.Abs(got-want) <= tol*(1+want)
		}
		for _, f := range []float64{1, 2, 4} {
			nr := int(f * math.Sqrt(float64(n)))
			idx, err := core.BuildOneShot(db, euclidM, core.OneShotParams{
				NumReps: nr, S: nr, Seed: cfg.Seed, ExactCount: true,
				Phase1Chunked:   grade == metric.GradeChunked,
				Phase1Quantized: grade == metric.GradeQuantized})
			if err != nil {
				return nil, err
			}
			res, st := idx.Search(queries)
			correct := 0
			for i := range res {
				if res[i].Dist == truth[i] {
					correct++
				}
			}
			t.AddRow(name, "rbc-oneshot", fmt.Sprintf("nr=s=%d", nr),
				float64(correct)/float64(len(res)),
				float64(st.TotalEvals())/float64(queries.N()))
		}
		for _, p := range []lsh.Params{
			{L: 4, K: 8}, {L: 8, K: 12}, {L: 16, K: 16},
		} {
			p.Seed = cfg.Seed
			p.Rescore = grade
			idx, err := lsh.Build(db, p)
			if err != nil {
				return nil, err
			}
			res, evals := idx.Search(queries)
			correct := 0
			for i := range res {
				if res[i].ID >= 0 && hit(res[i].Dist, truth[i]) {
					correct++
				}
			}
			t.AddRow(name, "lsh", fmt.Sprintf("L=%d K=%d", p.L, p.K),
				float64(correct)/float64(len(res)),
				float64(evals)/float64(queries.N()))
		}
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunAblationApprox sweeps the (1+ε)-approximate exact variant
// (footnote 1 of the paper): work saved and worst observed error ratio
// against the true NN as ε grows.
func RunAblationApprox(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	t := stats.NewTable("Ablation: (1+eps)-approximate exact search",
		"dataset", "eps", "evals/query", "work vs exact", "mean ratio", "max ratio")
	for _, name := range []string{"robot", "tiny8"} {
		e, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		db, queries := workload(e, cfg, 0)
		nr := int(cfg.RepFactor * math.Sqrt(float64(db.N())))
		want := bruteforce.Search(queries, db, euclid, nil)
		var exactEvals float64
		for _, eps := range []float64{0, 0.25, 1, 3} {
			idx, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: true, ApproxEps: eps})
			if err != nil {
				return nil, err
			}
			res, st := idx.Search(queries)
			evals := float64(st.TotalEvals()) / float64(queries.N())
			if eps == 0 {
				exactEvals = evals
			}
			var sum, worst float64
			count := 0
			for i := range res {
				if want[i].Dist == 0 {
					continue
				}
				r := res[i].Dist / want[i].Dist
				sum += r
				count++
				if r > worst {
					worst = r
				}
				if r > 1+eps+1e-9 {
					return nil, fmt.Errorf("approx guarantee violated: ratio %v at eps %v", r, eps)
				}
			}
			mean := 1.0
			if count > 0 {
				mean = sum / float64(count)
			}
			t.AddRow(name, eps, evals, evals/exactEvals, mean, worst)
		}
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunGPUDivergence contrasts a data-dependent tree-walk kernel with a
// uniform kernel of identical depth on the SIMT simulator — the
// quantitative backing for §3's claim that conditional tree search
// under-utilizes vector hardware.
func RunGPUDivergence(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	e, _ := dataset.ByName("tiny8")
	sub := cfg
	if sub.Queries < 256 {
		sub.Queries = 256
	}
	_, queries := workload(e, sub, cfg.GPUCap)
	t := stats.NewTable("SIMT divergence ablation (equal depth, equal loads)",
		"kernel", "depth", "Mcycles", "divergence ratio", "tx per load")
	for _, depth := range []int{8, 16, 32} {
		_, stTree := gpusim.TreeWalk(dev, queries, gpusim.TreeWalkConfig{Depth: depth})
		_, stUni := gpusim.UniformScan(dev, queries, depth)
		loads := float64(stTree.WarpsLaunched) * float64(depth)
		t.AddRow("tree-walk", depth, float64(stTree.Cycles)/1e6,
			stTree.DivergenceRatio(), float64(stTree.MemTransactions)/loads)
		loadsU := float64(stUni.WarpsLaunched) * float64(depth)
		t.AddRow("uniform", depth, float64(stUni.Cycles)/1e6,
			stUni.DivergenceRatio(), float64(stUni.MemTransactions)/loadsU)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}
