// Package harness defines the runnable experiments that regenerate every
// table and figure of the paper's evaluation (§7), plus the ablations and
// extensions documented in DESIGN.md. Each experiment is a pure function
// of a Config, producing text tables and ASCII charts; cmd/rbc-bench is a
// thin CLI over the registry.
package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/stats"
	"repro/internal/vec"
)

// Config scales the experiments. The paper's sizes (Table 1) correspond
// to Scale = 1; the defaults target commodity hardware while preserving
// the √n parameter couplings, so the *shapes* of all results carry over.
type Config struct {
	// Scale multiplies each workload's paper size (default 0.01).
	Scale float64
	// Queries is the number of test queries per run (default 200).
	Queries int
	// Seed drives every random component.
	Seed int64
	// RepFactor multiplies √n when choosing n_r for exact search
	// (default 2; stands in for the unknown c^{3/2} constant).
	RepFactor float64
	// GPUCap bounds the database size used on the SIMT simulator, which
	// pays a large constant per simulated lane-op (default 3000).
	GPUCap int
	// CoverTreeCap bounds the database size for cover-tree comparisons
	// (sequential builds; default 30000).
	CoverTreeCap int
	// Kernel selects the kernel grade for the paths that tolerate
	// approximate ordering: the timed brute-force baselines, one-shot
	// probe selection and LSH candidate rescoring. "exact" (default),
	// "fast" (float64 Gram), "chunked" (float32 chunked accumulation) or
	// "quantized" (int8 codes with exact rescoring — baselines run the
	// two-pass bruteforce scans). Correctness references and exact-search
	// answers always stay on the exact grade.
	Kernel string
	// QuantSweepCap bounds the largest database size the quant-sweep
	// experiment materializes (default 1,000,000 — the memory-bound
	// regime the sweep exists to measure; tests set it low).
	QuantSweepCap int
}

// Grade resolves the configured kernel grade.
func (c Config) Grade() (metric.Grade, error) {
	switch c.Kernel {
	case "", "exact":
		return metric.GradeExact, nil
	case "fast":
		return metric.GradeFast, nil
	case "chunked":
		return metric.GradeChunked, nil
	case "quantized":
		return metric.GradeQuantized, nil
	}
	return metric.GradeExact, fmt.Errorf("harness: unknown kernel grade %q (have exact, fast, chunked, quantized)", c.Kernel)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Seed == 0 {
		c.Seed = 20120501 // IPPS 2012
	}
	if c.RepFactor <= 0 {
		c.RepFactor = 2
	}
	if c.GPUCap <= 0 {
		c.GPUCap = 3000
	}
	if c.CoverTreeCap <= 0 {
		c.CoverTreeCap = 30000
	}
	if c.QuantSweepCap <= 0 {
		c.QuantSweepCap = 1_000_000
	}
	return c
}

// Output carries an experiment's rendered results.
type Output struct {
	Tables []*stats.Table
	Charts []*stats.Chart
}

// Experiment is a registered, runnable reproduction unit.
type Experiment struct {
	// ID is the CLI name (fig1, table2, …).
	ID string
	// Title is the paper artifact it regenerates.
	Title string
	// Description explains what is measured.
	Description string
	// Run executes the experiment.
	Run func(cfg Config) (*Output, error)
}

// Registry lists all experiments: the paper's five artifacts first, then
// the ablations/extensions.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: dataset overview",
			Description: "sizes, dimensions and estimated growth dimension of the workloads",
			Run:         RunTable1},
		{ID: "fig1", Title: "Figure 1: one-shot speedup vs rank error",
			Description: "log-log tradeoff sweep of n_r = s for the one-shot algorithm",
			Run:         RunFig1},
		{ID: "fig2", Title: "Figure 2: exact-search speedup over brute force",
			Description: "per-dataset speedup of the exact RBC (work ratio and wall clock)",
			Run:         RunFig2},
		{ID: "table2", Title: "Table 2: GPU one-shot speedup over GPU brute force",
			Description: "simulated-cycle ratio on the SIMT device model",
			Run:         RunTable2},
		{ID: "table3", Title: "Table 3: Cover Tree vs exact RBC",
			Description: "total query time, sequential cover tree vs parallel RBC",
			Run:         RunTable3},
		{ID: "fig3", Title: "Figure 3: exact-search speedup vs number of representatives",
			Description: "parameter-stability sweep of n_r (Appendix C)",
			Run:         RunFig3},
		{ID: "ablation-bounds", Title: "Ablation: pruning bounds (1), (2) and both",
			Description: "work per query with each pruning rule in isolation (§6 remark)",
			Run:         RunAblationBounds},
		{ID: "ablation-earlyexit", Title: "Ablation: sorted lists + admissible window",
			Description: "effect of the Claim 2 early-exit refinement",
			Run:         RunAblationEarlyExit},
		{ID: "ablation-approx", Title: "Ablation: (1+eps)-approximate exact search",
			Description: "footnote-1 variant: work saved vs observed error ratio",
			Run:         RunAblationApprox},
		{ID: "scaling", Title: "Extension: thread-count scaling",
			Description: "exact RBC throughput vs GOMAXPROCS (flat on single-core hosts)",
			Run:         RunScaling},
		{ID: "distributed", Title: "Extension (§8): representative-sharded cluster",
			Description: "routed RBC vs broadcast brute force on a simulated cluster",
			Run:         RunDistributed},
		{ID: "dist-batch", Title: "Extension (§8): tiled batched shard scans",
			Description: "distributed k-NN per-query vs block fan-out (throughput + message amortization)",
			Run:         RunDistBatch},
		{ID: "dist-window", Title: "Extension (§8): shard-side EarlyExit windows",
			Description: "sorted shard segments + per-(query, segment) admissible windows: PointEvals saved vs protocol bytes",
			Run:         RunDistWindow},
		{ID: "gpu-divergence", Title: "Extension: SIMT divergence ablation",
			Description: "why conditional tree search under-utilizes vector hardware (§3)",
			Run:         RunGPUDivergence},
		{ID: "baselines", Title: "Extension: kd-tree / cover tree / RBC comparison",
			Description: "per-query work of every implemented structure (§7.1 remark)",
			Run:         RunBaselines},
		{ID: "lsh-compare", Title: "Extension: one-shot RBC vs locality-sensitive hashing",
			Description: "recall and work of the two approximate schemes (§2 discussion)",
			Run:         RunLSHCompare},
		{ID: "quant-sweep", Title: "Extension: quantized-kernel n-sweep (memory-bound crossover)",
			Description: "chunked float32 vs int8 two-pass brute force as n grows at dim 64 (§3's bandwidth argument on the CPU)",
			Run:         RunQuantSweep},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, 16)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// workload materializes a catalog entry at the configured scale and
// splits off the query set, which therefore follows the data
// distribution, as in the paper (queries held out of the database).
func workload(e dataset.Entry, cfg Config, cap int) (db, queries *vec.Dataset) {
	n := e.ScaledN(cfg.Scale)
	if cap > 0 && n > cap {
		n = cap
	}
	all := e.Generate(n+cfg.Queries, cfg.Seed)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	qids := make([]int, cfg.Queries)
	for i := range qids {
		qids[i] = n + i
	}
	return all.Subset(ids), all.Subset(qids)
}

// timeIt runs f once and reports elapsed wall-clock seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
