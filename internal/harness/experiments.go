package harness

import (
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/dataset"
	"repro/internal/expansion"
	"repro/internal/gpusim"
	"repro/internal/metric"
	"repro/internal/stats"
)

// euclid is the metric used by all of the paper's experiments.
var euclid = metric.Euclidean{}

// RunTable1 regenerates Table 1: the dataset overview, extended with the
// estimated growth dimension that §6 argues governs RBC performance.
func RunTable1(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	t := stats.NewTable("Table 1: data sets (scaled ×"+fmt.Sprintf("%g", cfg.Scale)+")",
		"name", "paper n", "n used", "dim", "growth dim (est)", "c (median)")
	for _, e := range dataset.Catalog() {
		db, _ := workload(e, cfg, 0)
		est := expansion.Vectors(db, euclid, expansion.Options{Samples: 24, Seed: cfg.Seed})
		t.AddRow(e.Name, e.PaperN, db.N(), e.Dim, est.Dim, est.CMedian)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// fig1Factors are the n_r = s multipliers (×√n) swept for the one-shot
// tradeoff curve.
var fig1Factors = []float64{0.25, 0.5, 1, 2, 4}

// RunFig1 regenerates Figure 1: one-shot speedup (y) against mean rank
// error (x), log-log, one series per dataset. Speedup is reported both as
// wall-clock (brute time / RBC time on this machine) and as the
// machine-independent work ratio n/(evals per query).
func RunFig1(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	grade, err := cfg.Grade()
	if err != nil {
		return nil, err
	}
	bker := metric.NewGradeKernel(euclid, grade)
	chart := stats.NewChart("Figure 1: one-shot speedup vs mean rank (log-log)",
		"mean rank of returned neighbor", "work speedup over brute force")
	chart.LogX, chart.LogY = true, true
	table := stats.NewTable("Figure 1 data: one-shot tradeoff sweep",
		"dataset", "n", "nr=s", "mean rank", "work speedup", "wall speedup", "recall")
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, cfg, 0)
		n := db.N()
		// The timed baseline runs on the selected kernel grade (the
		// quantized grade routes through the two-pass scan — its
		// candidate pass has no meaning inside a plain SearchWith); the
		// correctness reference (recall ground truth) always stays exact.
		var bruteRes []bruteforce.Result
		bruteSec := timeIt(func() {
			if grade == metric.GradeQuantized {
				bruteRes = bruteforce.SearchQuantized(queries, db, euclid, nil)
			} else {
				bruteRes = bruteforce.SearchWith(queries, db, bker, nil)
			}
		})
		if grade != metric.GradeExact {
			bruteRes = bruteforce.Search(queries, db, euclid, nil)
		}
		wantDists := make([]float64, queries.N())
		for i, r := range bruteRes {
			wantDists[i] = r.Dist
		}
		xs := make([]float64, 0, len(fig1Factors))
		ys := make([]float64, 0, len(fig1Factors))
		for _, f := range fig1Factors {
			nr := int(f * math.Sqrt(float64(n)))
			if nr < 1 {
				nr = 1
			}
			if nr > n {
				nr = n
			}
			idx, err := core.BuildOneShot(db, euclid, core.OneShotParams{
				NumReps: nr, S: nr, Seed: cfg.Seed, ExactCount: true,
				Phase1Chunked:   grade == metric.GradeChunked,
				Phase1Quantized: grade == metric.GradeQuantized})
			if err != nil {
				return nil, err
			}
			var res []core.Result
			var st core.Stats
			rbcSec := timeIt(func() { res, st = idx.Search(queries) })
			gotDists := make([]float64, queries.N())
			for i, r := range res {
				gotDists[i] = r.Dist
			}
			meanRank := stats.MeanRank(queries, db, gotDists, euclid)
			workSpeedup := float64(n) * float64(queries.N()) / float64(st.TotalEvals())
			wallSpeedup := bruteSec / rbcSec
			recall := stats.Recall(gotDists, wantDists)
			table.AddRow(e.Name, n, idx.NumReps(), meanRank, workSpeedup, wallSpeedup, recall)
			// The paper's log-log plot cannot show rank 0; clamp to the
			// resolution floor (one error in 10× the query count).
			plotRank := meanRank
			if plotRank <= 0 {
				plotRank = 0.1 / float64(queries.N())
			}
			xs = append(xs, plotRank)
			ys = append(ys, workSpeedup)
		}
		chart.Add(e.Name, xs, ys)
	}
	return &Output{Tables: []*stats.Table{table}, Charts: []*stats.Chart{chart}}, nil
}

// RunFig2 regenerates Figure 2: exact-search speedup over brute force per
// dataset, with n_r = RepFactor·√n (the standard setting).
func RunFig2(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	grade, err := cfg.Grade()
	if err != nil {
		return nil, err
	}
	bker := metric.NewGradeKernel(euclid, grade)
	t := stats.NewTable("Figure 2: exact RBC speedup over brute force",
		"dataset", "n", "nr", "work speedup", "wall speedup", "evals/query", "reps kept/query")
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, cfg, 0)
		n := db.N()
		nr := int(cfg.RepFactor * math.Sqrt(float64(n)))
		idx, err := core.BuildExact(db, euclid, core.ExactParams{
			NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: true})
		if err != nil {
			return nil, err
		}
		// Timed baseline on the selected grade; the exactness check below
		// stays on the exact per-query reference.
		bruteSec := timeIt(func() {
			if grade == metric.GradeQuantized {
				bruteforce.SearchQuantized(queries, db, euclid, nil)
			} else {
				bruteforce.SearchWith(queries, db, bker, nil)
			}
		})
		var res []core.Result
		var st core.Stats
		rbcSec := timeIt(func() { res, st = idx.Search(queries) })
		// Sanity: exact search must be exact; verify on a prefix.
		check := queries.N()
		if check > 25 {
			check = 25
		}
		for i := 0; i < check; i++ {
			want := bruteforce.SearchOne(queries.Row(i), db, euclid, nil)
			if res[i].Dist != want.Dist {
				return nil, fmt.Errorf("fig2: %s query %d inexact (%v vs %v)", e.Name, i, res[i].Dist, want.Dist)
			}
		}
		evalsPerQuery := float64(st.TotalEvals()) / float64(queries.N())
		t.AddRow(e.Name, n, idx.NumReps(),
			float64(n)/evalsPerQuery, bruteSec/rbcSec, evalsPerQuery,
			float64(st.RepsKept)/float64(queries.N()))
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunTable2 regenerates Table 2: one-shot speedup over brute force with
// both pipelines on the simulated GPU, reported in simulated cycles.
func RunTable2(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table 2: GPU one-shot speedup over GPU brute force (simulated cycles)",
		"dataset", "n", "nr=s", "brute Mcycles", "rbc Mcycles", "speedup", "recall")
	// The SIMT simulator pays a large constant per lane-op, so Table 2
	// runs at a capped database size and fewer queries; the speedup is a
	// same-device ratio, which is scale-stable (EXPERIMENTS.md).
	gpuQueries := cfg.Queries / 4
	if gpuQueries < 8 {
		gpuQueries = 8
	}
	sub := cfg
	sub.Queries = gpuQueries
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, sub, cfg.GPUCap)
		n := db.N()
		nr := int(2 * math.Sqrt(float64(n)))
		idx, err := gpusim.BuildOneShotIndex(db, nr, nr, cfg.Seed)
		if err != nil {
			return nil, err
		}
		bruteRes, bruteStats := gpusim.BruteForceNN(dev, queries, db)
		rbcRes, rbcStats := gpusim.OneShotNN(dev, queries, idx)
		correct := 0
		for i := range rbcRes {
			if rbcRes[i].SqDist == bruteRes[i].SqDist {
				correct++
			}
		}
		t.AddRow(e.Name, n, nr,
			float64(bruteStats.Cycles)/1e6, float64(rbcStats.Cycles)/1e6,
			float64(bruteStats.Cycles)/float64(rbcStats.Cycles),
			float64(correct)/float64(len(rbcRes)))
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// RunTable3 regenerates Table 3: total query time for the (sequential)
// cover tree against the (parallel) exact RBC, plus the
// machine-independent distance-evaluation comparison.
func RunTable3(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	t := stats.NewTable("Table 3: Cover Tree (1 core) vs exact RBC (all cores)",
		"dataset", "n", "ct sec", "rbc sec", "ct evals/q", "rbc evals/q", "rbc speedup")
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, cfg, cfg.CoverTreeCap)
		n := db.N()
		rows := db.Rows()
		tree := covertree.Build(rows, metric.Metric[[]float32](euclid))
		tree.DistEvals = 0
		ctSec := timeIt(func() {
			for i := 0; i < queries.N(); i++ {
				tree.NN(queries.Row(i))
			}
		})
		ctEvals := float64(tree.DistEvals) / float64(queries.N())

		nr := int(cfg.RepFactor * math.Sqrt(float64(n)))
		idx, err := core.BuildExact(db, euclid, core.ExactParams{
			NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: true})
		if err != nil {
			return nil, err
		}
		var st core.Stats
		rbcSec := timeIt(func() { _, st = idx.Search(queries) })
		rbcEvals := float64(st.TotalEvals()) / float64(queries.N())
		t.AddRow(e.Name, n, ctSec, rbcSec, ctEvals, rbcEvals, ctSec/rbcSec)
	}
	return &Output{Tables: []*stats.Table{t}}, nil
}

// fig3Factors are the representative-count multipliers (×√n) swept in
// Appendix C.
var fig3Factors = []float64{0.25, 0.5, 1, 2, 4, 8}

// RunFig3 regenerates Figure 3 (Appendix C): exact-search speedup as a
// function of the number of representatives — the paper's evidence that
// the single parameter is forgiving.
func RunFig3(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	chart := stats.NewChart("Figure 3: exact speedup vs number of representatives (log y)",
		"n_r", "work speedup")
	chart.LogY = true
	table := stats.NewTable("Figure 3 data: representative sweep",
		"dataset", "n", "nr", "work speedup", "evals/query")
	for _, e := range dataset.Catalog() {
		db, queries := workload(e, cfg, 0)
		n := db.N()
		xs := make([]float64, 0, len(fig3Factors))
		ys := make([]float64, 0, len(fig3Factors))
		for _, f := range fig3Factors {
			nr := int(f * math.Sqrt(float64(n)))
			if nr < 1 {
				nr = 1
			}
			if nr > n {
				nr = n
			}
			idx, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: cfg.Seed, ExactCount: true, EarlyExit: true})
			if err != nil {
				return nil, err
			}
			_, st := idx.Search(queries)
			evalsPerQuery := float64(st.TotalEvals()) / float64(queries.N())
			speedup := float64(n) / evalsPerQuery
			table.AddRow(e.Name, n, idx.NumReps(), speedup, evalsPerQuery)
			xs = append(xs, float64(idx.NumReps()))
			ys = append(ys, speedup)
		}
		chart.Add(e.Name, xs, ys)
	}
	return &Output{Tables: []*stats.Table{table}, Charts: []*stats.Chart{chart}}, nil
}
