// Benchmarks regenerating the paper's tables and figures, one benchmark
// function per artifact. These run at reduced scale so `go test -bench=.`
// finishes in minutes; use cmd/rbc-bench for the full sweeps and
// EXPERIMENTS.md for recorded results. Custom metrics:
//
//	evals/query   machine-independent work per query
//	speedup       brute-force work / RBC work (the paper's headline axis)
//	Mcycles       simulated GPU cycles (Table 2)
package rbc_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/metric"
	"repro/internal/stats"
	"repro/internal/vec"
)

const (
	benchN       = 4000 // database size per workload
	benchQueries = 64   // queries per iteration
	benchGPUN    = 800  // SIMT-simulated database size
	benchSeed    = 20120501
)

// benchSets is the per-dataset subset used by the per-dataset benchmarks
// (the full eight-workload sweep lives in cmd/rbc-bench).
var benchSets = []string{"bio", "cov", "robot", "tiny16"}

var (
	wlMu    sync.Mutex
	wlCache = map[string][2]*vec.Dataset{}
)

// benchWorkload returns a cached (db, queries) pair for a catalog entry.
func benchWorkload(b *testing.B, name string, n int) (*vec.Dataset, *vec.Dataset) {
	b.Helper()
	key := fmt.Sprintf("%s/%d", name, n)
	wlMu.Lock()
	defer wlMu.Unlock()
	if got, ok := wlCache[key]; ok {
		return got[0], got[1]
	}
	e, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	all := e.Generate(n+benchQueries, benchSeed)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	qids := make([]int, benchQueries)
	for i := range qids {
		qids[i] = n + i
	}
	db, q := all.Subset(ids), all.Subset(qids)
	wlCache[key] = [2]*vec.Dataset{db, q}
	return db, q
}

var euclid = metric.Euclidean{}

// BenchmarkTable1_DatasetBuild measures workload generation plus growth-
// dimension estimation — the provenance of Table 1.
func BenchmarkTable1_DatasetBuild(b *testing.B) {
	for _, name := range benchSets {
		b.Run(name, func(b *testing.B) {
			e, err := dataset.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				db := e.Generate(2000, benchSeed)
				if db.N() != 2000 {
					b.Fatal("bad generation")
				}
			}
		})
	}
}

// BenchmarkFig1_OneShotTradeoff measures one-shot batch search at the
// n_r = s = 2√n setting and reports the work speedup and rank error that
// Figure 1 plots.
func BenchmarkFig1_OneShotTradeoff(b *testing.B) {
	for _, name := range benchSets {
		b.Run(name, func(b *testing.B) {
			db, queries := benchWorkload(b, name, benchN)
			nr := int(2 * math.Sqrt(float64(db.N())))
			idx, err := core.BuildOneShot(db, euclid, core.OneShotParams{
				NumReps: nr, S: nr, Seed: benchSeed, ExactCount: true})
			if err != nil {
				b.Fatal(err)
			}
			var st core.Stats
			var res []core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, st = idx.Search(queries)
			}
			b.StopTimer()
			evalsPerQ := float64(st.TotalEvals()) / float64(queries.N())
			b.ReportMetric(evalsPerQ, "evals/query")
			b.ReportMetric(float64(db.N())/evalsPerQ, "speedup")
			dists := make([]float64, len(res))
			for i, r := range res {
				dists[i] = r.Dist
			}
			b.ReportMetric(stats.MeanRank(queries, db, dists, euclid), "mean-rank")
		})
	}
}

// BenchmarkFig2_ExactSpeedup measures brute force and the exact RBC on
// the same batch — their time ratio is Figure 2's bar height.
func BenchmarkFig2_ExactSpeedup(b *testing.B) {
	for _, name := range benchSets {
		db, queries := benchWorkload(b, name, benchN)
		b.Run("brute/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bruteforce.Search(queries, db, euclid, nil)
			}
			b.ReportMetric(float64(db.N()), "evals/query")
		})
		b.Run("rbc/"+name, func(b *testing.B) {
			nr := int(2 * math.Sqrt(float64(db.N())))
			idx, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: benchSeed, ExactCount: true, EarlyExit: true})
			if err != nil {
				b.Fatal(err)
			}
			var st core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st = idx.Search(queries)
			}
			b.StopTimer()
			evalsPerQ := float64(st.TotalEvals()) / float64(queries.N())
			b.ReportMetric(evalsPerQ, "evals/query")
			b.ReportMetric(float64(db.N())/evalsPerQ, "speedup")
		})
	}
}

// BenchmarkTable2_GPUSim measures the simulated-cycle cost of the GPU
// brute-force and one-shot pipelines; their ratio is Table 2's speedup.
func BenchmarkTable2_GPUSim(b *testing.B) {
	db, queries := benchWorkload(b, "robot", benchGPUN)
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("brute", func(b *testing.B) {
		var st gpusim.Stats
		for i := 0; i < b.N; i++ {
			_, st = gpusim.BruteForceNN(dev, queries, db)
		}
		b.ReportMetric(float64(st.Cycles)/1e6, "Mcycles")
	})
	b.Run("oneshot", func(b *testing.B) {
		nr := int(2 * math.Sqrt(float64(db.N())))
		idx, err := gpusim.BuildOneShotIndex(db, nr, nr, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var st gpusim.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st = gpusim.OneShotNN(dev, queries, idx)
		}
		b.StopTimer()
		b.ReportMetric(float64(st.Cycles)/1e6, "Mcycles")
	})
}

// BenchmarkTable3_CoverTreeVsRBC measures sequential cover-tree queries
// against parallel exact-RBC queries — Table 3's two columns.
func BenchmarkTable3_CoverTreeVsRBC(b *testing.B) {
	for _, name := range benchSets {
		db, queries := benchWorkload(b, name, benchN)
		b.Run("covertree/"+name, func(b *testing.B) {
			tree := covertree.Build(db.Rows(), metric.Metric[[]float32](euclid))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < queries.N(); qi++ {
					tree.NN(queries.Row(qi))
				}
			}
			b.StopTimer()
			tree.DistEvals = 0
			for qi := 0; qi < queries.N(); qi++ {
				tree.NN(queries.Row(qi))
			}
			b.ReportMetric(float64(tree.DistEvals)/float64(queries.N()), "evals/query")
		})
		b.Run("rbc/"+name, func(b *testing.B) {
			nr := int(2 * math.Sqrt(float64(db.N())))
			idx, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: benchSeed, ExactCount: true, EarlyExit: true})
			if err != nil {
				b.Fatal(err)
			}
			var st core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st = idx.Search(queries)
			}
			b.StopTimer()
			b.ReportMetric(float64(st.TotalEvals())/float64(queries.N()), "evals/query")
		})
	}
}

// BenchmarkFig3_RepSweep measures exact-search cost across the n_r grid
// of Appendix C on one representative workload.
func BenchmarkFig3_RepSweep(b *testing.B) {
	db, queries := benchWorkload(b, "robot", benchN)
	for _, factor := range []float64{0.5, 1, 2, 4} {
		nr := int(factor * math.Sqrt(float64(db.N())))
		b.Run(fmt.Sprintf("nr=%d", nr), func(b *testing.B) {
			idx, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: benchSeed, ExactCount: true, EarlyExit: true})
			if err != nil {
				b.Fatal(err)
			}
			var st core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st = idx.Search(queries)
			}
			b.StopTimer()
			evalsPerQ := float64(st.TotalEvals()) / float64(queries.N())
			b.ReportMetric(evalsPerQ, "evals/query")
			b.ReportMetric(float64(db.N())/evalsPerQ, "speedup")
		})
	}
}

// BenchmarkBuild measures index construction — the one-time cost the
// paper's §4 notes is itself a single parallel brute-force call.
func BenchmarkBuild(b *testing.B) {
	db, _ := benchWorkload(b, "robot", benchN)
	nr := int(2 * math.Sqrt(float64(db.N())))
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildExact(db, euclid, core.ExactParams{
				NumReps: nr, Seed: benchSeed, ExactCount: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildOneShot(db, euclid, core.OneShotParams{
				NumReps: nr, S: nr, Seed: benchSeed, ExactCount: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
