package rbc_test

import (
	"fmt"

	rbc "repro"
)

// ExampleBruteForceK answers a small batch with the tiled brute-force
// primitive — no index, one pass over the database shared by the whole
// query block.
func ExampleBruteForceK() {
	db := rbc.FromRows([][]float32{
		{0, 0}, {1, 0}, {2, 0}, {3, 0},
	})
	queries := rbc.FromRows([][]float32{{1.9, 0}})

	for _, nb := range rbc.BruteForceK(queries, db, 2, rbc.Euclidean())[0] {
		fmt.Printf("id=%d dist=%.1f\n", nb.ID, nb.Dist)
	}
	// Output:
	// id=2 dist=0.1
	// id=1 dist=0.9
}

// ExampleExact_KNNBatch builds the exact RBC index and answers a query
// block in one batched call. Answers are exact, so the output does not
// depend on the representative seed.
func ExampleExact_KNNBatch() {
	db := rbc.NewDataset(2)
	for i := 0; i < 100; i++ {
		db.Append([]float32{float32(i % 10), float32(i / 10)})
	}
	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}

	queries := rbc.FromRows([][]float32{
		{2.2, 0},
		{8.6, 9},
	})
	nbrs, stats := idx.KNNBatch(queries, 2)
	for qi, ns := range nbrs {
		fmt.Printf("query %d:", qi)
		for _, nb := range ns {
			fmt.Printf(" (id=%d dist=%.1f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
	fmt.Println("pruning saved work:", stats.TotalEvals() < int64(queries.N()*db.N()))
	// Output:
	// query 0: (id=2 dist=0.2) (id=3 dist=0.8)
	// query 1: (id=99 dist=0.4) (id=98 dist=0.6)
	// pruning saved work: true
}
