// Command rbc-datagen materializes the synthetic benchmark workloads
// (Table 1 equivalents; see DESIGN.md §3 for the substitution rationale)
// as binary or CSV files consumable by rbc-query and by external tools.
//
// Usage:
//
//	rbc-datagen -name robot -n 50000 -out robot.rbcv
//	rbc-datagen -name tiny16 -scale 0.001 -format csv -out tiny16.csv
//	rbc-datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/vec"
)

func main() {
	var (
		name     = flag.String("name", "", "workload name (see -list)")
		n        = flag.Int("n", 0, "number of points (overrides -scale)")
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's size")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (required)")
		format   = flag.String("format", "bin", "output format: bin or csv")
		listOnly = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *listOnly {
		fmt.Printf("%-8s %10s %5s\n", "name", "paper n", "dim")
		for _, e := range dataset.Catalog() {
			fmt.Printf("%-8s %10d %5d\n", e.Name, e.PaperN, e.Dim)
		}
		return
	}
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "rbc-datagen: -name and -out are required (try -list)")
		os.Exit(2)
	}
	entry, err := dataset.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbc-datagen: %v\n", err)
		os.Exit(2)
	}
	count := *n
	if count <= 0 {
		count = entry.ScaledN(*scale)
	}
	fmt.Printf("generating %s: n=%d dim=%d seed=%d\n", entry.Name, count, entry.Dim, *seed)
	db := entry.Generate(count, *seed)
	if err := writeDataset(db, *out, *format); err != nil {
		fmt.Fprintf(os.Stderr, "rbc-datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d points x %d dims)\n", *out, db.N(), db.Dim)
}

func writeDataset(db *vec.Dataset, path, format string) error {
	switch format {
	case "bin":
		return db.SaveFile(path)
	case "csv":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := db.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	default:
		return fmt.Errorf("unknown format %q (want bin or csv)", format)
	}
}
