package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vec"
)

func TestWriteDatasetBinary(t *testing.T) {
	db := dataset.UniformCube(50, 4, 1)
	path := filepath.Join(t.TempDir(), "d.rbcv")
	if err := writeDataset(db, path, "bin"); err != nil {
		t.Fatal(err)
	}
	got, err := vec.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestWriteDatasetCSV(t *testing.T) {
	db := dataset.UniformCube(20, 3, 2)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := writeDataset(db, path, "csv"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := vec.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 20 || got.Dim != 3 {
		t.Fatalf("csv round trip: %dx%d", got.N(), got.Dim)
	}
}

func TestWriteDatasetUnknownFormat(t *testing.T) {
	db := dataset.UniformCube(5, 2, 3)
	if err := writeDataset(db, filepath.Join(t.TempDir(), "x"), "xml"); err == nil {
		t.Fatal("unknown format should error")
	}
}
