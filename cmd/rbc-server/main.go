// Command rbc-server serves an RBC index over HTTP/JSON. See
// internal/server for the endpoint reference.
//
//	rbc-server -data robot.rbcv -mode exact -addr :8080
//	curl -s localhost:8080/stats
//	curl -s -XPOST localhost:8080/query -d '{"point":[0.1,...],"k":5}'
//
// With -data-dir the exact mode serves durably: mutations are
// write-ahead logged (fsynced per -wal-sync) and snapshots commit via
// POST /snapshot or the -snapshot-every timer. On restart the server
// recovers from the committed snapshot plus WAL replay; -data is then
// only needed to bootstrap a fresh directory. See internal/server's
// durability documentation for the recovery contract.
//
//	rbc-server -data robot.rbcv -data-dir /var/lib/rbc -wal-sync always
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	rbc "repro"
	"repro/internal/server"
	"repro/internal/vec"
	"repro/internal/wal"
)

func main() {
	var (
		dataPath     = flag.String("data", "", "dataset file (RBCV binary; required unless -data-dir holds a snapshot)")
		dataDir      = flag.String("data-dir", "", "durability directory (WAL + snapshots; exact mode only)")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
		walEvery     = flag.Duration("wal-sync-every", 50*time.Millisecond, "group-commit interval under -wal-sync interval")
		snapEvery    = flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 disables; POST /snapshot always works)")
		mode         = flag.String("mode", "exact", "index type: exact or oneshot")
		numReps      = flag.Int("reps", 0, "number of representatives (0 = sqrt(n))")
		seed         = flag.Int64("seed", 1, "random seed")
		addr         = flag.String("addr", ":8080", "listen address")
		batchMax     = flag.Int("batch-max", 64, "coalesce up to this many concurrent queries per batch (<=1 disables)")
		batchWait    = flag.Duration("batch-wait", 500*time.Microsecond, "max time a query parks waiting for its batch to fill")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *dataPath == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "rbc-server: -data is required (or -data-dir with an existing snapshot)")
		os.Exit(2)
	}
	var db *vec.Dataset
	var err error
	if *dataPath != "" {
		db, err = vec.LoadFile(*dataPath)
		if err != nil {
			log.Fatalf("rbc-server: %v", err)
		}
	}
	m := rbc.Euclidean()
	coalesce := server.WithCoalescing(*batchMax, *batchWait)
	var srv *server.Server
	start := time.Now()
	switch *mode {
	case "exact":
		prm := rbc.ExactParams{NumReps: *numReps, Seed: *seed, EarlyExit: true}
		if *dataDir != "" {
			sm, err := wal.ParseSyncMode(*walSync)
			if err != nil {
				log.Fatalf("rbc-server: %v", err)
			}
			var replay wal.ReplayStats
			srv, replay, err = server.OpenDurable(db, m, prm, server.DurabilityOptions{
				Dir: *dataDir, Sync: sm, SyncEvery: *walEvery, SnapshotEvery: *snapEvery,
			}, coalesce)
			if err != nil {
				log.Fatalf("rbc-server: %v", err)
			}
			log.Printf("durable exact index from %s: %d records replayed (%d bytes truncated), ready in %v",
				*dataDir, replay.Records, replay.TruncatedBytes, time.Since(start))
			break
		}
		idx, err := rbc.BuildExact(db, m, prm)
		if err != nil {
			log.Fatalf("rbc-server: %v", err)
		}
		srv = server.NewExact(db, m, idx, coalesce)
		log.Printf("exact index: %d points, %d representatives (built in %v)",
			db.N(), idx.NumReps(), time.Since(start))
	case "oneshot":
		if *dataDir != "" {
			log.Fatalf("rbc-server: -data-dir requires -mode exact (one-shot indexes are read-only)")
		}
		idx, err := rbc.BuildOneShot(db, m, rbc.OneShotParams{NumReps: *numReps, Seed: *seed})
		if err != nil {
			log.Fatalf("rbc-server: %v", err)
		}
		srv = server.NewOneShot(db, m, idx, coalesce)
		log.Printf("one-shot index: %d points, %d representatives, s=%d (built in %v)",
			db.N(), idx.NumReps(), idx.S(), time.Since(start))
	default:
		log.Fatalf("rbc-server: unknown mode %q", *mode)
	}
	if *batchMax > 1 {
		log.Printf("query coalescing: up to %d queries per batch, max wait %v", *batchMax, *batchWait)
	}
	// On SIGINT/SIGTERM, drain in-flight HTTP requests (http.Server
	// Shutdown), then flush parked coalesced queries and close the WAL.
	// The old path (srv.Close + os.Exit around ListenAndServe) cut
	// responses mid-body and could ack an /insert while the WAL was
	// closing under it.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("rbc-server: %v", err)
	}
	log.Printf("serving on %s", ln.Addr())
	if err := server.GracefulServe(ln, srv, srv.Close, sigc, *drainTimeout); err != nil {
		log.Fatalf("rbc-server: %v", err)
	}
	log.Printf("shutdown complete")
}
