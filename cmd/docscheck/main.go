// Command docscheck keeps the markdown documentation honest. For each
// file named on the command line it verifies that
//
//   - every fenced ```go code block is gofmt-clean: it must parse (as a
//     whole file or as a declaration/statement list, the same contract
//     as go/format.Source) and already be in canonical gofmt form, and
//   - every relative markdown link [text](path) resolves to a file or
//     directory that actually exists, relative to the markdown file's
//     own directory (external schemes and pure #anchors are skipped).
//
// It prints one line per violation and exits nonzero if there are any,
// so CI can run `docscheck README.md ARCHITECTURE.md docs/OPERATIONS.md`
// and fail the build when an example rots or a link dangles.
package main

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck file.md ...")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		for _, problem := range checkFile(path) {
			fmt.Println(problem)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var problems []string
	lines := strings.Split(string(data), "\n")
	inFence := false
	fenceLang := ""
	fenceStart := 0
	var fenceBody []string
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if !inFence {
				inFence = true
				fenceLang = strings.TrimPrefix(trimmed, "```")
				fenceStart = i + 1
				fenceBody = fenceBody[:0]
			} else {
				if fenceLang == "go" {
					problems = append(problems, checkGoBlock(path, fenceStart, fenceBody)...)
				}
				inFence = false
			}
			continue
		}
		if inFence {
			fenceBody = append(fenceBody, line)
			continue
		}
		problems = append(problems, checkLinks(path, i+1, line)...)
	}
	if inFence {
		problems = append(problems, fmt.Sprintf("%s:%d: unclosed code fence", path, fenceStart))
	}
	return problems
}

// checkGoBlock requires the block to be gofmt-canonical already —
// format.Source accepts whole files and declaration/statement lists, so
// doc snippets don't need package clauses, but they do need tabs and
// canonical spacing.
func checkGoBlock(path string, startLine int, body []string) []string {
	src := []byte(strings.Join(body, "\n") + "\n")
	formatted, err := format.Source(src)
	if err != nil {
		return []string{fmt.Sprintf("%s:%d: go block does not parse: %v", path, startLine, err)}
	}
	if !bytes.Equal(formatted, src) {
		return []string{fmt.Sprintf("%s:%d: go block is not gofmt-clean (indent with tabs, canonical spacing)", path, startLine)}
	}
	return nil
}

func checkLinks(path string, lineNo int, line string) []string {
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" { // pure in-page anchor
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), target)
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: dangling link %q (%s does not exist)", path, lineNo, m[1], resolved))
		}
	}
	return problems
}
