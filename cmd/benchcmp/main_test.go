package main

import (
	"math"
	"testing"
)

const sample = `goos: linux
autotile: budget=16384 source=env dim64=32x256 dim256=32x64
BenchmarkRowKernelExact/dim=64-8         	    2000	     67448 ns/op	3886.60 MB/s
BenchmarkRowKernelExact/dim=64-8         	    2000	     67252 ns/op	3897.91 MB/s
BenchmarkRowKernelChunked/dim=64-8       	    2000	     40714 ns/op	6438.73 MB/s
BenchmarkBFTiledChunked/dim=784-8        	      20	 123456789 ns/op	     100 dist-evals/s
PASS
ok  	repro/internal/metric	8.523s
`

func TestParseBenchKeepsMinimum(t *testing.T) {
	got, tileShape := parseBench([]byte(sample))
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if tileShape != "autotile: budget=16384 source=env dim64=32x256 dim256=32x64" {
		t.Fatalf("tileShape = %q", tileShape)
	}
	if got["BenchmarkRowKernelExact/dim=64"] != 67252 {
		t.Fatalf("exact min = %v, want 67252 (minimum across -count runs)", got["BenchmarkRowKernelExact/dim=64"])
	}
	if got["BenchmarkRowKernelChunked/dim=64"] != 40714 {
		t.Fatalf("chunked = %v", got["BenchmarkRowKernelChunked/dim=64"])
	}
	if got["BenchmarkBFTiledChunked/dim=784"] != 123456789 {
		t.Fatalf("large value = %v", got["BenchmarkBFTiledChunked/dim=784"])
	}
}

func TestCompareGeomeanAndMissing(t *testing.T) {
	old := map[string]float64{"a": 100, "b": 100, "retired": 50}
	fresh := map[string]float64{"a": 110, "b": 121, "c": 5}
	geo, rows, missing, gone := compare(old, fresh)
	want := math.Sqrt(1.10 * 1.21)
	if math.Abs(geo-want) > 1e-12 {
		t.Fatalf("geomean %v, want %v", geo, want)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if len(missing) != 1 || missing[0] != "c" {
		t.Fatalf("missing: %v", missing)
	}
	// A baseline benchmark absent from the new run must be surfaced — it
	// silently shrinks the regression gate otherwise.
	if len(gone) != 1 || gone[0] != "retired" {
		t.Fatalf("gone: %v", gone)
	}
	// Worst regression first.
	if rows[0] == "" || rows[0][0] != 'b' {
		t.Fatalf("worst-first ordering: %q", rows[0])
	}
	if geo, _, _, _ := compare(map[string]float64{}, fresh); !math.IsNaN(geo) {
		t.Fatalf("no common benchmarks should yield NaN, got %v", geo)
	}
}
