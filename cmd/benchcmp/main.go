// Command benchcmp is the bench-regression gate behind the CI pipeline:
// it parses `go test -bench` output, compares it against a checked-in
// baseline (BENCH_baseline.json at the repository root), and fails when
// the geometric-mean slowdown across the common benchmarks exceeds a
// threshold — so a kernel or scan-path regression turns the build red
// instead of silently eroding the numbers the ROADMAP records.
//
// Usage:
//
//	go test -run '^$' -bench ... ./... | tee bench-new.txt
//	benchcmp -baseline BENCH_baseline.json -new bench-new.txt \
//	    -out bench-new.json -max-regress 1.15 \
//	    -assert-ratio 'BenchmarkRowKernelExact/dim=64;BenchmarkRowKernelChunked/dim=64;1.5'
//
// Refresh the baseline (after an intentional perf change, on the pinned
// CI bench config) with:
//
//	benchcmp -update -new bench-new.txt -baseline BENCH_baseline.json
//
// With -count N runs, the fastest (minimum ns/op) sample per benchmark
// is used on both sides — robust against scheduler noise spikes, which
// only ever slow a run down. -assert-ratio (repeatable) asserts
// ns/op(first) / ns/op(second) >= min in the NEW numbers; it is how CI
// pins the chunked row kernel's >= 1.5x win over the exact row kernel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in benchmark snapshot: benchmark name (CPU
// suffix stripped) to ns/op.
type Baseline struct {
	// Note records the pinned configuration the numbers were taken on.
	Note string `json:"note"`
	// TileShape records the tile-budget provenance line the metric test
	// binary prints under RBC_REPORT_TILESHAPE=1 ("autotile: budget=...
	// source=env ..."), so the artifact shows which tile shapes produced
	// the numbers — and a baseline taken with a measured (machine-local)
	// budget is distinguishable from one taken on the CI env pin.
	TileShape  string             `json:"tile_shape,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches a `go test -bench` result line, e.g.
// "BenchmarkRowKernelExact/dim=64-8   2000   67448 ns/op   3886 MB/s".
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench reads go test -bench output, keeping the minimum ns/op per
// benchmark across repeated (-count) runs. The second return value is the
// autotile provenance line, if the run printed one.
func parseBench(data []byte) (map[string]float64, string) {
	out := map[string]float64{}
	tileShape := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "autotile:") && tileShape == "" {
			tileShape = line
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, tileShape
}

// ratioAssert is one -assert-ratio triple: ns/op(num)/ns/op(den) >= min.
type ratioAssert struct {
	num, den string
	min      float64
}

func main() {
	var (
		newPath    = flag.String("new", "", "go test -bench output to evaluate (required)")
		basePath   = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSON")
		outPath    = flag.String("out", "", "write the parsed new numbers as JSON (CI artifact)")
		maxRegress = flag.Float64("max-regress", 1.15, "fail when geomean(new/baseline) exceeds this")
		update     = flag.Bool("update", false, "rewrite the baseline from -new instead of comparing")
		note       = flag.String("note", "", "note stored in the baseline on -update")
	)
	var asserts []ratioAssert
	flag.Func("assert-ratio", "'NUM;DEN;MIN' — assert ns/op(NUM)/ns/op(DEN) >= MIN in the new numbers (repeatable)", func(s string) error {
		parts := strings.Split(s, ";")
		if len(parts) != 3 {
			return fmt.Errorf("want 'NUM;DEN;MIN', got %q", s)
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("bad MIN in %q: %v", s, err)
		}
		asserts = append(asserts, ratioAssert{num: parts[0], den: parts[1], min: min})
		return nil
	})
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*newPath)
	if err != nil {
		fatal(err)
	}
	fresh, tileShape := parseBench(data)
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *newPath))
	}
	if tileShape != "" {
		fmt.Println("benchcmp:", tileShape)
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, Baseline{Note: *note, TileShape: tileShape, Benchmarks: fresh}); err != nil {
			fatal(err)
		}
	}
	if *update {
		if err := writeJSON(*basePath, Baseline{Note: *note, TileShape: tileShape, Benchmarks: fresh}); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcmp: baseline %s updated with %d benchmarks\n", *basePath, len(fresh))
		return
	}

	baseData, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(baseData, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
	}
	geo, rows, missing, gone := compare(base.Benchmarks, fresh)
	for _, r := range rows {
		fmt.Println(r)
	}
	for _, name := range missing {
		fmt.Printf("benchcmp: note: %-52s not in baseline (new benchmark?)\n", name)
	}
	failed := false
	// A benchmark present in the baseline but absent from the new run
	// would silently shrink the gate (a renamed bench, regex drift or a
	// failing package removes itself from the geomean) — treat it as a
	// failure; prune intentionally-retired benchmarks with -update.
	for _, name := range gone {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL: baseline benchmark %q missing from the new run (renamed? regex drift? package failure?)\n", name)
		failed = true
	}
	if math.IsNaN(geo) {
		fmt.Fprintln(os.Stderr, "benchcmp: FAIL: no benchmarks in common with the baseline")
		failed = true
	} else {
		fmt.Printf("benchcmp: geomean new/baseline = %.3f (gate %.3f)\n", geo, *maxRegress)
		if geo > *maxRegress {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL: geomean regression %.1f%% exceeds %.1f%%\n",
				(geo-1)*100, (*maxRegress-1)*100)
			failed = true
		}
	}
	for _, a := range asserts {
		num, okN := fresh[a.num]
		den, okD := fresh[a.den]
		if !okN || !okD {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL: ratio assertion needs %q and %q in the new numbers\n", a.num, a.den)
			failed = true
			continue
		}
		ratio := num / den
		fmt.Printf("benchcmp: ratio %s / %s = %.2fx (need >= %.2fx)\n", a.num, a.den, ratio, a.min)
		if ratio < a.min {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL: ratio %.2fx below required %.2fx\n", ratio, a.min)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// compare returns the geomean of new/old over common benchmarks (NaN when
// none), per-benchmark report rows sorted worst-first, the names that are
// new-only, and the baseline names absent from the new run.
func compare(old, fresh map[string]float64) (float64, []string, []string, []string) {
	type row struct {
		name  string
		ratio float64
		old   float64
		new_  float64
	}
	var rows []row
	var missing []string
	var logSum float64
	for name, ns := range fresh {
		if oldNS, ok := old[name]; ok && oldNS > 0 {
			r := ns / oldNS
			rows = append(rows, row{name, r, oldNS, ns})
			logSum += math.Log(r)
		} else {
			missing = append(missing, name)
		}
	}
	var gone []string
	for name := range old {
		if _, ok := fresh[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	sort.Strings(missing)
	sort.Strings(gone)
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%-56s %12.0f -> %12.0f ns/op  (%.3fx)", r.name, r.old, r.new_, r.ratio)
	}
	if len(rows) == 0 {
		return math.NaN(), out, missing, gone
	}
	return math.Exp(logSum / float64(len(rows))), out, missing, gone
}

func writeJSON(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
