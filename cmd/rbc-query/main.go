// Command rbc-query builds, saves, loads and queries RBC indexes over
// datasets produced by rbc-datagen (or any RBCV/CSV file).
//
// Build and save an index:
//
//	rbc-query -data robot.rbcv -mode exact -save robot.idx
//
// Query (loads the index if -load is given, otherwise builds in memory):
//
//	rbc-query -data robot.rbcv -load robot.idx -q "0.1,0.2,..." -k 5
//	rbc-query -data robot.rbcv -mode oneshot -queries probes.csv -k 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	rbc "repro"
	"repro/internal/core"
	"repro/internal/vec"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file (RBCV binary or CSV; required)")
		mode      = flag.String("mode", "exact", "index type: exact or oneshot")
		numReps   = flag.Int("reps", 0, "number of representatives (0 = sqrt(n))")
		sParam    = flag.Int("s", 0, "one-shot ownership list size (0 = reps)")
		seed      = flag.Int64("seed", 1, "random seed for representative sampling")
		savePath  = flag.String("save", "", "save the built index to this file and exit")
		loadPath  = flag.String("load", "", "load a previously saved index")
		queryStr  = flag.String("q", "", "single query: comma-separated floats")
		queryFile = flag.String("queries", "", "CSV file of queries, one per line")
		k         = flag.Int("k", 1, "number of neighbors to return")
	)
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "rbc-query: -data is required")
		os.Exit(2)
	}
	db, err := loadDataset(*dataPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbc-query: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %d points x %d dims\n", db.N(), db.Dim)

	searcher, err := buildOrLoad(db, *mode, *numReps, *sParam, *seed, *loadPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbc-query: %v\n", err)
		os.Exit(1)
	}
	if *savePath != "" {
		if err := saveIndex(searcher, *savePath); err != nil {
			fmt.Fprintf(os.Stderr, "rbc-query: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("index saved to %s\n", *savePath)
		return
	}

	queries, err := collectQueries(*queryStr, *queryFile, db.Dim)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbc-query: %v\n", err)
		os.Exit(2)
	}
	if queries.N() == 0 {
		fmt.Fprintln(os.Stderr, "rbc-query: provide -q or -queries (or -save)")
		os.Exit(2)
	}
	start := time.Now()
	for i := 0; i < queries.N(); i++ {
		nbs, st := searcher.KNN(queries.Row(i), *k)
		fmt.Printf("query %d: ", i)
		for j, nb := range nbs {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("#%d (d=%.4f)", nb.ID, nb.Dist)
		}
		fmt.Printf("  [%d distance evals]\n", st.TotalEvals())
	}
	elapsed := time.Since(start)
	fmt.Printf("%d queries in %v (%.0f queries/sec)\n",
		queries.N(), elapsed, float64(queries.N())/elapsed.Seconds())
}

// searcher is the common surface of the two index types.
type searcher interface {
	KNN(q []float32, k int) ([]struct {
		ID   int
		Dist float64
	}, core.Stats)
}

// The internal KNN signatures return par.Neighbor; adapt via small
// wrappers so the CLI stays independent of internal types.
type exactSearcher struct{ idx *rbc.Exact }

func (s exactSearcher) KNN(q []float32, k int) ([]struct {
	ID   int
	Dist float64
}, core.Stats) {
	nbs, st := s.idx.KNN(q, k)
	out := make([]struct {
		ID   int
		Dist float64
	}, len(nbs))
	for i, nb := range nbs {
		out[i].ID, out[i].Dist = nb.ID, nb.Dist
	}
	return out, st
}

type oneShotSearcher struct{ idx *rbc.OneShot }

func (s oneShotSearcher) KNN(q []float32, k int) ([]struct {
	ID   int
	Dist float64
}, core.Stats) {
	nbs, st := s.idx.KNN(q, k)
	out := make([]struct {
		ID   int
		Dist float64
	}, len(nbs))
	for i, nb := range nbs {
		out[i].ID, out[i].Dist = nb.ID, nb.Dist
	}
	return out, st
}

func buildOrLoad(db *vec.Dataset, mode string, reps, s int, seed int64, loadPath string) (searcher, error) {
	m := rbc.Euclidean()
	switch mode {
	case "exact":
		if loadPath != "" {
			f, err := os.Open(loadPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			idx, err := rbc.LoadExact(f, db, m)
			if err != nil {
				return nil, err
			}
			return exactSearcher{idx}, nil
		}
		start := time.Now()
		idx, err := rbc.BuildExact(db, m, rbc.ExactParams{NumReps: reps, Seed: seed, EarlyExit: true})
		if err != nil {
			return nil, err
		}
		fmt.Printf("built exact index: %d representatives in %v\n", idx.NumReps(), time.Since(start))
		return exactSearcher{idx}, nil
	case "oneshot":
		if loadPath != "" {
			f, err := os.Open(loadPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			idx, err := rbc.LoadOneShot(f, db, m)
			if err != nil {
				return nil, err
			}
			return oneShotSearcher{idx}, nil
		}
		start := time.Now()
		idx, err := rbc.BuildOneShot(db, m, rbc.OneShotParams{NumReps: reps, S: s, Seed: seed})
		if err != nil {
			return nil, err
		}
		fmt.Printf("built one-shot index: %d representatives, s=%d in %v\n",
			idx.NumReps(), idx.S(), time.Since(start))
		return oneShotSearcher{idx}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q (want exact or oneshot)", mode)
	}
}

func saveIndex(s searcher, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch v := s.(type) {
	case exactSearcher:
		return v.idx.Save(f)
	case oneShotSearcher:
		return v.idx.Save(f)
	}
	return fmt.Errorf("unknown index type")
}

func loadDataset(path string) (*vec.Dataset, error) {
	if strings.HasSuffix(path, ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return vec.ReadCSV(f)
	}
	return vec.LoadFile(path)
}

func collectQueries(queryStr, queryFile string, dim int) (*vec.Dataset, error) {
	queries := vec.New(dim, 4)
	if queryStr != "" {
		fields := strings.Split(queryStr, ",")
		if len(fields) != dim {
			return nil, fmt.Errorf("query has %d values, dataset dim is %d", len(fields), dim)
		}
		row := make([]float32, dim)
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				return nil, fmt.Errorf("query value %d: %w", i+1, err)
			}
			row[i] = float32(v)
		}
		queries.Append(row)
	}
	if queryFile != "" {
		f, err := os.Open(queryFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		qs, err := vec.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		if qs.N() > 0 && qs.Dim != dim {
			return nil, fmt.Errorf("queries have dim %d, dataset dim is %d", qs.Dim, dim)
		}
		for i := 0; i < qs.N(); i++ {
			queries.Append(qs.Row(i))
		}
	}
	return queries, nil
}
