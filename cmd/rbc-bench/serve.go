package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/vec"
)

// serveBenchConfig parameterizes the serving-style benchmark (-concurrency).
type serveBenchConfig struct {
	n, dim      int           // database size and dimension
	concurrency int           // closed-loop client goroutines
	secs        float64       // measurement window per mode
	batchMax    int           // coalescer batch bound (defaults to concurrency)
	batchWait   time.Duration // coalescer max wait
	seed        int64
}

// runServeBench measures the serving path end to end: closed-loop clients
// hammer /query and we report QPS and latency percentiles for the
// per-query server, the coalescing server, and — as the floor — the
// index driven directly as a single stream. The workload is the
// compute-bound serving regime (overlapping dim-`dim` Gaussian clusters,
// held-out queries), where batching concurrent requests into one tiled
// BF(Q,R)+grouped-scan call pays the most.
func runServeBench(cfg serveBenchConfig) error {
	if cfg.batchMax <= 0 {
		cfg.batchMax = cfg.concurrency
	}
	const queryPool = 256
	all := dataset.GaussianClusters(cfg.n+queryPool, cfg.dim, 32, 5.0, cfg.seed)
	ids := make([]int, cfg.n)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)
	fmt.Printf("building exact index: n=%d dim=%d ... ", cfg.n, cfg.dim)
	start := time.Now()
	idx, err := core.BuildExact(db, metric.Euclidean{}, core.ExactParams{Seed: cfg.seed, EarlyExit: true})
	if err != nil {
		return err
	}
	fmt.Printf("done in %v (%d representatives)\n", time.Since(start).Round(time.Millisecond), idx.NumReps())

	queries := vec.New(cfg.dim, queryPool)
	bodies := make([][]byte, queryPool)
	for i := 0; i < queryPool; i++ {
		q := all.Row(cfg.n + i)
		queries.Append(q)
		type req struct {
			Point []float32 `json:"point"`
			K     int       `json:"k"`
		}
		bodies[i], _ = json.Marshal(req{Point: q, K: 1})
	}

	// Floor: the index driven directly, one query at a time, one stream.
	singleStart := time.Now()
	singleN := 0
	for time.Since(singleStart).Seconds() < cfg.secs {
		idx.KNN(queries.Row(singleN%queryPool), 1)
		singleN++
	}
	singleQPS := float64(singleN) / time.Since(singleStart).Seconds()

	table := stats.NewTable(
		fmt.Sprintf("serving throughput: %d closed-loop clients, n=%d dim=%d (window %.0fs)",
			cfg.concurrency, cfg.n, cfg.dim, cfg.secs),
		"mode", "qps", "p50 ms", "p99 ms")
	table.AddRow("single-stream index (no HTTP)", fmt.Sprintf("%.0f", singleQPS), "-", "-")

	perQPS, p50, p99, err := driveServer(server.NewExact(db, metric.Euclidean{}, idx), cfg, bodies)
	if err != nil {
		return err
	}
	table.AddRow("server, per-query", fmt.Sprintf("%.0f", perQPS),
		fmt.Sprintf("%.2f", p50), fmt.Sprintf("%.2f", p99))

	co := server.NewExact(db, metric.Euclidean{}, idx,
		server.WithCoalescing(cfg.batchMax, cfg.batchWait))
	coQPS, cp50, cp99, err := driveServer(co, cfg, bodies)
	co.Close()
	if err != nil {
		return err
	}
	table.AddRow(fmt.Sprintf("server, coalesced (batch<=%d, wait %v)", cfg.batchMax, cfg.batchWait),
		fmt.Sprintf("%.0f", coQPS), fmt.Sprintf("%.2f", cp50), fmt.Sprintf("%.2f", cp99))
	table.AddRow("coalescing speedup", fmt.Sprintf("%.2fx", coQPS/perQPS), "", "")

	fmt.Println()
	return table.Render(os.Stdout)
}

// driveServer runs cfg.concurrency closed-loop clients against s for
// cfg.secs and returns QPS plus p50/p99 latency in milliseconds.
func driveServer(s *server.Server, cfg serveBenchConfig, bodies [][]byte) (qps, p50, p99 float64, err error) {
	deadline := time.Now().Add(time.Duration(cfg.secs * float64(time.Second)))
	lats := make([][]float64, cfg.concurrency)
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c * 31
			for time.Now().Before(deadline) {
				i++
				req := httptest.NewRequest("POST", "/query", bytes.NewReader(bodies[i%len(bodies)]))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				s.ServeHTTP(rec, req)
				lats[c] = append(lats[c], time.Since(t0).Seconds()*1000)
				if rec.Code != http.StatusOK {
					failed.Add(1)
					_, _ = io.Copy(io.Discard, rec.Body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if failed.Load() > 0 {
		return 0, 0, 0, fmt.Errorf("serve bench: %d requests failed", failed.Load())
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0, fmt.Errorf("serve bench: no requests completed")
	}
	sort.Float64s(all)
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return float64(len(all)) / elapsed, pct(0.50), pct(0.99), nil
}
