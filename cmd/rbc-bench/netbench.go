package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/metric"
	"repro/internal/vec"
)

// netBenchConfig parameterizes the networked-cluster benchmark
// (-shard-addrs).
type netBenchConfig struct {
	addrs   []string // one rbc-shard address per shard
	n, dim  int      // database size and dimension
	k       int      // neighbors per query
	block   int      // queries per batched fan-out
	secs    float64  // measurement window per backend
	seed    int64
	timeout time.Duration // per-attempt request deadline
}

// runNetBench drives the same RBC cluster twice — on the in-process
// loopback transport and over TCP to real rbc-shard processes — and
// reports block throughput plus the wire accounting the loopback run
// can only simulate: per-shard requests, retries, bytes out/in and
// mean RTT. A bit-identity check between the two backends runs first,
// so a CI smoke that reaches the report lines has also proven the
// cross-process equivalence corpus.
func runNetBench(cfg netBenchConfig) error {
	shards := len(cfg.addrs)
	const queryPool = 512
	all := dataset.GaussianClusters(cfg.n+queryPool, cfg.dim, 32, 5.0, cfg.seed)
	ids := make([]int, cfg.n)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)
	queries := vec.New(cfg.dim, queryPool)
	for i := 0; i < queryPool; i++ {
		queries.Append(all.Row(cfg.n + i))
	}
	prm := core.ExactParams{Seed: cfg.seed, EarlyExit: true}

	fmt.Printf("building %d-shard cluster: n=%d dim=%d ... ", shards, cfg.n, cfg.dim)
	start := time.Now()
	loop, err := distributed.Build(db, metric.Euclidean{}, prm, shards, distributed.DefaultCostModel())
	if err != nil {
		return err
	}
	defer loop.Close()
	netCl, err := distributed.Build(db, metric.Euclidean{}, prm, shards, distributed.DefaultCostModel())
	if err != nil {
		return err
	}
	defer netCl.Close()
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("distributing to %d shard processes ... ", shards)
	start = time.Now()
	if err := netCl.Distribute(cfg.addrs, distributed.TCPOptions{RequestTimeout: cfg.timeout}); err != nil {
		return err
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))

	// Equivalence smoke before timing anything: the networked answers
	// must be bit-identical to loopback across the pool.
	block := queries.Subset(seqInts(0, min(cfg.block, queryPool)))
	want, _, err := loop.KNNBatch(block, cfg.k)
	if err != nil {
		return err
	}
	got, _, err := netCl.KNNBatch(block, cfg.k)
	if err != nil {
		return fmt.Errorf("networked KNNBatch: %w", err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				return fmt.Errorf("equivalence violation at query %d pos %d: tcp %+v vs loopback %+v",
					i, j, got[i][j], want[i][j])
			}
		}
	}
	fmt.Printf("equivalence: networked answers bit-identical to loopback (%d queries, k=%d)\n\n", block.N(), cfg.k)

	for _, be := range []struct {
		name string
		cl   *distributed.Cluster
	}{{"loopback", loop}, {"tcp", netCl}} {
		blocks, qs := 0, 0
		var met distributed.QueryMetrics
		bstart := time.Now()
		for time.Since(bstart).Seconds() < cfg.secs {
			lo := (blocks * cfg.block) % queryPool
			n := min(cfg.block, queryPool-lo)
			sub := queries.Subset(seqInts(lo, n))
			_, m, err := be.cl.KNNBatch(sub, cfg.k)
			if err != nil {
				return fmt.Errorf("%s KNNBatch: %w", be.name, err)
			}
			met.Add(m)
			blocks++
			qs += n
		}
		secs := time.Since(bstart).Seconds()
		fmt.Printf("%-8s  %8.0f queries/s  %6.1f blocks/s  (block=%d k=%d, %d shard reqs, %.1f MB fan-out)\n",
			be.name, float64(qs)/secs, float64(blocks)/secs, cfg.block, cfg.k,
			met.ShardsContacted, float64(met.Bytes)/1e6)
	}

	fmt.Printf("\nper-shard wire stats (tcp backend):\n")
	fmt.Printf("%-22s %9s %8s %9s %12s %12s %10s\n", "addr", "requests", "retries", "failures", "bytes-out", "bytes-in", "mean-rtt")
	for _, st := range netCl.NetStats() {
		meanRTT := time.Duration(0)
		if st.Requests > 0 {
			meanRTT = st.RTT / time.Duration(st.Requests)
		}
		fmt.Printf("%-22s %9d %8d %9d %12d %12d %10v\n",
			st.Addr, st.Requests, st.Retries, st.Failures, st.BytesSent, st.BytesRecv, meanRTT.Round(time.Microsecond))
	}
	return nil
}

func seqInts(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
