package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/metric"
	"repro/internal/vec"
)

// netBenchConfig parameterizes the networked-cluster benchmark
// (-shard-addrs).
type netBenchConfig struct {
	addrs    []string // rbc-shard addresses, grouped into replica sets of size `replicas`
	replicas int      // consecutive addresses per shard (1 = unreplicated)
	n, dim   int      // database size and dimension
	k        int      // neighbors per query
	block    int      // queries per batched fan-out
	secs     float64  // measurement window per backend
	seed     int64
	timeout  time.Duration // per-attempt request deadline

	hedgeDelay time.Duration // fixed hedge delay (0 = adaptive RTT quantile)
	maxHedges  int           // extra replicas per scan (0 = hedging off)
	slow       time.Duration // inject a sleep proxy adding this delay in front of shard 0's primary
}

// runNetBench drives the same RBC cluster over the in-process loopback
// transport and over TCP to real rbc-shard processes — replicated when
// -replicas > 1 — and reports block throughput, per-block p50/p99
// latency, and the wire accounting the loopback run can only simulate.
// With -max-hedges > 0 the TCP run happens twice, hedged and unhedged,
// and the report quantifies the tail-latency win; with -net-slow an
// in-process sleep proxy delays every request to shard 0's primary
// replica, the scenario hedging exists for. A bit-identity check
// between backends runs first, so a CI smoke that reaches the report
// lines has also proven the cross-process equivalence corpus.
func runNetBench(cfg netBenchConfig) error {
	if cfg.replicas < 1 {
		cfg.replicas = 1
	}
	if len(cfg.addrs)%cfg.replicas != 0 {
		return fmt.Errorf("%d shard addresses do not divide into replica sets of %d", len(cfg.addrs), cfg.replicas)
	}
	shards := len(cfg.addrs) / cfg.replicas
	assignment := make([][]string, shards)
	for sid := 0; sid < shards; sid++ {
		assignment[sid] = cfg.addrs[sid*cfg.replicas : (sid+1)*cfg.replicas]
	}
	if cfg.slow > 0 {
		proxy, err := startSlowProxy(assignment[0][0], cfg.slow)
		if err != nil {
			return err
		}
		fmt.Printf("injecting %v sleep proxy in front of shard 0 primary %s (now %s)\n", cfg.slow, assignment[0][0], proxy)
		assignment[0] = append([]string{proxy}, assignment[0][1:]...)
	}

	const queryPool = 512
	all := dataset.GaussianClusters(cfg.n+queryPool, cfg.dim, 32, 5.0, cfg.seed)
	ids := make([]int, cfg.n)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)
	queries := vec.New(cfg.dim, queryPool)
	for i := 0; i < queryPool; i++ {
		queries.Append(all.Row(cfg.n + i))
	}
	prm := core.ExactParams{Seed: cfg.seed, EarlyExit: true}
	buildCluster := func() (*distributed.Cluster, error) {
		return distributed.Build(db, metric.Euclidean{}, prm, shards, distributed.DefaultCostModel())
	}

	fmt.Printf("building %d-shard cluster (%d replicas/shard): n=%d dim=%d ... ", shards, cfg.replicas, cfg.n, cfg.dim)
	start := time.Now()
	loop, err := buildCluster()
	if err != nil {
		return err
	}
	defer loop.Close()
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))

	type backend struct {
		name string
		cl   *distributed.Cluster
	}
	backends := []backend{{name: "loopback", cl: loop}}
	distribute := func(name string, hedge distributed.HedgeOptions) (*distributed.Cluster, error) {
		cl, err := buildCluster()
		if err != nil {
			return nil, err
		}
		opts := distributed.TCPOptions{RequestTimeout: cfg.timeout, Hedge: hedge}
		fmt.Printf("distributing %s to %d shard processes ... ", name, len(cfg.addrs))
		start := time.Now()
		if err := cl.DistributeReplicas(assignment, opts); err != nil {
			cl.Close()
			return nil, err
		}
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
		return cl, nil
	}
	netCl, err := distribute("tcp", distributed.HedgeOptions{})
	if err != nil {
		return err
	}
	defer netCl.Close()
	backends = append(backends, backend{name: "tcp", cl: netCl})
	if cfg.maxHedges > 0 {
		hedged, err := distribute("tcp+hedge", distributed.HedgeOptions{
			MaxHedges: cfg.maxHedges, Delay: cfg.hedgeDelay,
		})
		if err != nil {
			return err
		}
		defer hedged.Close()
		backends = append(backends, backend{name: "tcp+hedge", cl: hedged})
	}

	// Equivalence smoke before timing anything: every networked backend
	// must answer bit-identically to loopback across the block.
	block := queries.Subset(seqInts(0, min(cfg.block, queryPool)))
	want, _, err := loop.KNNBatch(block, cfg.k)
	if err != nil {
		return err
	}
	for _, be := range backends[1:] {
		got, _, err := be.cl.KNNBatch(block, cfg.k)
		if err != nil {
			return fmt.Errorf("%s KNNBatch: %w", be.name, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					return fmt.Errorf("equivalence violation (%s) at query %d pos %d: %+v vs loopback %+v",
						be.name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	fmt.Printf("equivalence: all networked answers bit-identical to loopback (%d queries, k=%d)\n\n", block.N(), cfg.k)

	p99ByName := map[string]time.Duration{}
	fmt.Printf("%-10s %10s %9s %10s %10s   %s\n", "backend", "queries/s", "blocks/s", "p50/block", "p99/block", "notes")
	for _, be := range backends {
		blocks, qs := 0, 0
		var met distributed.QueryMetrics
		var lats []time.Duration
		bstart := time.Now()
		for time.Since(bstart).Seconds() < cfg.secs {
			lo := (blocks * cfg.block) % queryPool
			n := min(cfg.block, queryPool-lo)
			sub := queries.Subset(seqInts(lo, n))
			t0 := time.Now()
			_, m, err := be.cl.KNNBatch(sub, cfg.k)
			if err != nil {
				return fmt.Errorf("%s KNNBatch: %w", be.name, err)
			}
			lats = append(lats, time.Since(t0))
			met.Add(m)
			blocks++
			qs += n
		}
		secs := time.Since(bstart).Seconds()
		p50, p99 := latQuantile(lats, 0.50), latQuantile(lats, 0.99)
		p99ByName[be.name] = p99
		fmt.Printf("%-10s %10.0f %9.1f %10v %10v   block=%d k=%d, %d shard reqs, %.1f MB fan-out\n",
			be.name, float64(qs)/secs, float64(blocks)/secs,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond),
			cfg.block, cfg.k, met.ShardsContacted, float64(met.Bytes)/1e6)
	}
	if hp99, ok := p99ByName["tcp+hedge"]; ok {
		up99 := p99ByName["tcp"]
		if up99 > 0 {
			fmt.Printf("\nhedged p99 improvement over unhedged tcp: %.1f%% (%v -> %v)\n",
				100*(1-float64(hp99)/float64(up99)), up99.Round(time.Microsecond), hp99.Round(time.Microsecond))
		}
	}

	for _, be := range backends[1:] {
		fmt.Printf("\nper-replica wire stats (%s backend):\n", be.name)
		fmt.Printf("%-5s %-22s %9s %8s %9s %8s %10s %10s %12s %12s %10s\n",
			"shard", "addr", "requests", "retries", "failures", "hedged", "hedge-wins", "cancelled", "bytes-out", "bytes-in", "mean-rtt")
		for _, st := range be.cl.NetStats() {
			meanRTT := time.Duration(0)
			if st.Requests > 0 {
				meanRTT = st.RTT / time.Duration(st.Requests)
			}
			fmt.Printf("%-5d %-22s %9d %8d %9d %8d %10d %10d %12d %12d %10v\n",
				st.Shard, st.Addr, st.Requests, st.Retries, st.Failures,
				st.Hedged, st.HedgeWins, st.Cancelled,
				st.BytesSent, st.BytesRecv, meanRTT.Round(time.Microsecond))
		}
	}
	return nil
}

// latQuantile returns the q-quantile of the observed latencies (nearest
// rank on a sorted copy).
func latQuantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	tmp := append([]time.Duration(nil), lats...)
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := int(q * float64(len(tmp)-1))
	return tmp[idx]
}

// startSlowProxy starts an in-process TCP proxy that forwards the wire
// protocol to backend, delaying every client→server frame by `delay` —
// the injected slow replica for the hedging experiment.
func startSlowProxy(backend string, delay time.Duration) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(client net.Conn) {
				defer client.Close()
				server, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer server.Close()
				go io.Copy(client, server)
				hdr := make([]byte, 8)
				for {
					if _, err := io.ReadFull(client, hdr); err != nil {
						return
					}
					payload := make([]byte, binary.LittleEndian.Uint32(hdr[0:4]))
					if _, err := io.ReadFull(client, payload); err != nil {
						return
					}
					time.Sleep(delay)
					frame := append(append([]byte(nil), hdr...), payload...)
					if _, err := server.Write(frame); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), nil
}

func seqInts(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
