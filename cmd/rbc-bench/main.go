// Command rbc-bench runs the paper-reproduction experiments. Each
// experiment regenerates one table or figure of Cayton (2012) — see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
//
// Usage:
//
//	rbc-bench -list
//	rbc-bench -exp fig2                     # one experiment
//	rbc-bench -exp paper                    # table1 fig1 fig2 table2 table3 fig3
//	rbc-bench -exp all -scale 0.02 -out results/
//	rbc-bench -concurrency 64               # serving-style coalescer benchmark
//	rbc-bench -shard-addrs a:1,b:2          # networked cluster vs loopback
//	rbc-bench -shard-addrs a:1,a:2,b:1,b:2 -replicas 2 -max-hedges 1 -net-slow 50ms
//	                                        # replicated + hedged tail-latency experiment
//
// At -scale 1 the workloads match the paper's Table 1 sizes; the default
// 0.01 runs in minutes on a laptop while preserving the √n parameter
// couplings (so speedup shapes carry over).
//
// With -concurrency N the command switches to a serving-style mode: N
// closed-loop clients drive the HTTP server's /query endpoint and the
// run reports QPS and p50/p99 latency for the per-query path, the
// request-coalescing path, and the raw single-stream index as a floor.
//
// With -shard-addrs the command benchmarks the distributed cluster over
// TCP against the in-process loopback transport, checking bit-identity
// first. -replicas groups consecutive addresses into per-shard replica
// sets; -max-hedges adds a hedged backend to the comparison and reports
// the p99 improvement, which -net-slow makes visible by putting a sleep
// proxy in front of shard 0's primary replica.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/metric"
)

func main() {
	var (
		expFlag  = flag.String("exp", "paper", "experiment id, comma list, 'paper', or 'all'")
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's dataset sizes")
		queries  = flag.Int("queries", 200, "queries per experiment")
		seed     = flag.Int64("seed", 20120501, "random seed")
		repFac   = flag.Float64("repfactor", 2, "n_r multiplier on sqrt(n) for exact search")
		kernel   = flag.String("kernel", "exact", "kernel grade, one of: exact | fast | chunked | quantized; applies to approximate-tolerant paths (timed BF baselines, one-shot probe selection, LSH rescoring; exact answers stay exact; quantized runs the two-pass int8 scan — see the quant-sweep experiment for its n-sweep); serving mode accepts only exact")
		outDir   = flag.String("out", "", "directory for .txt/.csv outputs (optional)")
		listOnly = flag.Bool("list", false, "list experiments and exit")

		concurrency = flag.Int("concurrency", 0, "serving mode: closed-loop clients driving /query (0 = run experiments instead)")
		serveN      = flag.Int("serve-n", 10000, "serving mode: database size")
		serveDim    = flag.Int("serve-dim", 64, "serving mode: dimension")
		serveSecs   = flag.Float64("serve-secs", 3, "serving mode: seconds per measured configuration")
		serveBatch  = flag.Int("serve-batch", 0, "serving mode: coalescer max batch (0 = concurrency)")
		serveWait   = flag.Duration("serve-wait", 500*time.Microsecond, "serving mode: coalescer max wait")

		shardAddrs = flag.String("shard-addrs", "", "networked mode: comma-separated rbc-shard addresses; benchmarks the cluster over TCP vs loopback (uses -serve-n/-serve-dim/-serve-secs)")
		netK       = flag.Int("net-k", 5, "networked mode: neighbors per query")
		netBlock   = flag.Int("net-block", 64, "networked mode: queries per batched fan-out")
		netTimeout = flag.Duration("net-timeout", 10*time.Second, "networked mode: per-attempt shard request deadline")
		replicas   = flag.Int("replicas", 1, "networked mode: replicas per shard — consecutive -shard-addrs entries form one shard's ordered replica set")
		maxHedges  = flag.Int("max-hedges", 0, "networked mode: extra replicas to hedge each scan onto (0 = hedging off; >0 adds a tcp+hedge backend to the comparison)")
		hedgeDelay = flag.Duration("hedge-delay", 0, "networked mode: fixed hedge delay (0 = adaptive p95-RTT delay)")
		netSlow    = flag.Duration("net-slow", 0, "networked mode: inject an in-process sleep proxy adding this delay in front of shard 0's primary replica")
	)
	flag.Parse()

	// Validate -kernel up front, before any mode branch: an unknown grade
	// must be rejected loudly, never silently defaulted, and serving mode
	// must not silently ignore a non-exact request (its answers are served
	// from the exact index, so accepting "-kernel chunked" there would
	// just misreport what was measured).
	grade, err := harness.Config{Kernel: *kernel}.Grade()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbc-bench: %v\n", err)
		os.Exit(2)
	}

	if *shardAddrs != "" {
		var addrs []string
		for _, a := range strings.Split(*shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		err := runNetBench(netBenchConfig{
			addrs: addrs, replicas: *replicas, n: *serveN, dim: *serveDim,
			k: *netK, block: *netBlock, secs: *serveSecs,
			seed: *seed, timeout: *netTimeout,
			hedgeDelay: *hedgeDelay, maxHedges: *maxHedges, slow: *netSlow,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbc-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *concurrency > 0 {
		if grade != metric.GradeExact {
			fmt.Fprintf(os.Stderr, "rbc-bench: serving mode answers on the exact grade only; -kernel %s is not supported with -concurrency\n", *kernel)
			os.Exit(2)
		}
		err := runServeBench(serveBenchConfig{
			n: *serveN, dim: *serveDim, concurrency: *concurrency,
			secs: *serveSecs, batchMax: *serveBatch, batchWait: *serveWait,
			seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbc-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *listOnly {
		for _, e := range harness.Registry() {
			fmt.Printf("%-20s %s\n%20s   %s\n", e.ID, e.Title, "", e.Description)
		}
		return
	}

	cfg := harness.Config{Scale: *scale, Queries: *queries, Seed: *seed, RepFactor: *repFac, Kernel: *kernel}
	ids := selectExperiments(*expFlag)
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "rbc-bench: no experiments selected")
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rbc-bench: %v\n", err)
			os.Exit(1)
		}
	}
	failed := false
	for _, id := range ids {
		exp, err := harness.ByID(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbc-bench: %v\n", err)
			failed = true
			continue
		}
		fmt.Printf("=== %s — %s ===\n", exp.ID, exp.Title)
		start := time.Now()
		out, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbc-bench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		for _, tb := range out.Tables {
			fmt.Println()
			if err := tb.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "rbc-bench: render: %v\n", err)
			}
		}
		for _, ch := range out.Charts {
			fmt.Println()
			if err := ch.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "rbc-bench: render: %v\n", err)
			}
		}
		fmt.Printf("\n(%s completed in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
		if *outDir != "" {
			if err := writeOutputs(*outDir, exp.ID, out); err != nil {
				fmt.Fprintf(os.Stderr, "rbc-bench: writing outputs: %v\n", err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func selectExperiments(spec string) []string {
	switch spec {
	case "all":
		ids := make([]string, 0, 16)
		for _, e := range harness.Registry() {
			ids = append(ids, e.ID)
		}
		return ids
	case "paper":
		return []string{"table1", "fig1", "fig2", "table2", "table3", "fig3"}
	default:
		var ids []string
		for _, id := range strings.Split(spec, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		return ids
	}
}

func writeOutputs(dir, id string, out *harness.Output) error {
	var text strings.Builder
	for _, tb := range out.Tables {
		if err := tb.Render(&text); err != nil {
			return err
		}
		text.WriteByte('\n')
	}
	for _, ch := range out.Charts {
		if err := ch.Render(&text); err != nil {
			return err
		}
		text.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(text.String()), 0o644); err != nil {
		return err
	}
	for i, tb := range out.Tables {
		name := id + ".csv"
		if i > 0 {
			name = fmt.Sprintf("%s_%d.csv", id, i)
		}
		var csv strings.Builder
		if err := tb.RenderCSV(&csv); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(csv.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
