package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/stats"
)

func TestSelectExperiments(t *testing.T) {
	all := selectExperiments("all")
	if len(all) != len(harness.Registry()) {
		t.Fatalf("all: %d experiments, want %d", len(all), len(harness.Registry()))
	}
	paper := selectExperiments("paper")
	want := []string{"table1", "fig1", "fig2", "table2", "table3", "fig3"}
	if len(paper) != len(want) {
		t.Fatalf("paper: %v", paper)
	}
	for i, id := range want {
		if paper[i] != id {
			t.Fatalf("paper[%d]=%s want %s", i, paper[i], id)
		}
	}
	custom := selectExperiments(" fig2 , table3 ")
	if len(custom) != 2 || custom[0] != "fig2" || custom[1] != "table3" {
		t.Fatalf("custom: %v", custom)
	}
	if got := selectExperiments(""); len(got) != 0 {
		t.Fatalf("empty spec: %v", got)
	}
}

func TestWriteOutputs(t *testing.T) {
	dir := t.TempDir()
	tb := stats.NewTable("T", "a", "b")
	tb.AddRow("x", 1.5)
	tb2 := stats.NewTable("T2", "c")
	tb2.AddRow("y")
	ch := stats.NewChart("C", "x", "y")
	ch.Add("s", []float64{1}, []float64{2})
	out := &harness.Output{Tables: []*stats.Table{tb, tb2}, Charts: []*stats.Chart{ch}}
	if err := writeOutputs(dir, "myexp", out); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(filepath.Join(dir, "myexp.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "T") || !strings.Contains(string(text), "C") {
		t.Fatalf("txt content:\n%s", text)
	}
	csv1, err := os.ReadFile(filepath.Join(dir, "myexp.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv1), "a,b\n") {
		t.Fatalf("csv content:\n%s", csv1)
	}
	if _, err := os.Stat(filepath.Join(dir, "myexp_1.csv")); err != nil {
		t.Fatal("second table csv missing")
	}
}
