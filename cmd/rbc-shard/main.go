// Command rbc-shard serves one RBC shard over the cluster's
// length-prefixed binary protocol (internal/distributed/wire).
//
// A shard process starts empty and generic: it holds no data until a
// coordinator pushes its segments with Cluster.Distribute (or
// DistributeReplicas, which pushes the same state to every member of a
// shard's replica set), after which it answers batched scan requests
// with the exact same shard-scan code the in-process cluster runs —
// answers over TCP are bit-identical to loopback by construction.
//
// The coordinator may push fresh state at any time: replica repair
// (Cluster.AddShardReplica) re-sends the current segments, and a
// rebalance (Cluster.Rebalance) re-sends reshuffled segments stamped
// with a bumped replica epoch. The server always adopts the newest
// load, and rejects scans whose epoch does not match the state it
// holds ("stale epoch"), so a mid-cutover coordinator can never merge
// answers computed against two different shard layouts.
//
// Usage:
//
//	rbc-shard -addr 127.0.0.1:7001 [-addr-file path]
//
// With -addr-file the actual listen address (useful with ":0") is
// written atomically (tmp + rename) once the listener is up, so
// supervisors and tests can wait for the file instead of polling the
// port. SIGINT/SIGTERM shut the server down cleanly: the listener
// closes, open connections are torn down (the coordinator's retry and
// degradation policy takes it from there) and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/distributed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "TCP address to listen on (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file (atomic tmp+rename) once ready")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("rbc-shard: listen %s: %v", *addr, err)
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			log.Fatalf("rbc-shard: %v", err)
		}
	}
	log.Printf("rbc-shard: listening on %s (no shard state; awaiting coordinator load)", ln.Addr())

	srv := distributed.NewShardServer()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("rbc-shard: %v: shutting down", s)
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("rbc-shard: serve: %v", err)
	}
}

func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rename %s: %w", filepath.Base(tmp), err)
	}
	return nil
}
