package rbc

import (
	"io"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/search"
	"repro/internal/vec"
)

// Dataset is a dense row-major float32 point collection; see
// internal/vec for the full API (Append, Row, Subset, Save/Load, …).
type Dataset = vec.Dataset

// Metric is a distance over float32 vectors. Implementations used with
// Exact must satisfy the triangle inequality.
type Metric = metric.Metric[[]float32]

// Result is a 1-NN answer: database id and distance (ID -1 when empty).
type Result = core.Result

// Stats reports per-search work: distance evaluations by phase and
// pruning counters. See core.Stats.
type Stats = core.Stats

// ExactParams configures BuildExact; the zero value selects the paper's
// standard setting (n_r ≈ √n, both pruning bounds).
type ExactParams = core.ExactParams

// OneShotParams configures BuildOneShot; the zero value selects
// n_r = s ≈ √n with one probe.
type OneShotParams = core.OneShotParams

// Exact is the always-correct RBC index (paper §5.2).
type Exact = core.Exact

// OneShot is the probabilistically-correct RBC index (paper §5.1).
type OneShot = core.OneShot

// NewDataset returns an empty dataset expecting points of the given
// dimension.
func NewDataset(dim int) *Dataset { return vec.New(dim, 0) }

// FromRows builds a dataset by copying rows (all the same length).
func FromRows(rows [][]float32) *Dataset { return vec.FromRows(rows) }

// LoadDataset reads a dataset saved with Dataset.SaveFile.
func LoadDataset(path string) (*Dataset, error) { return vec.LoadFile(path) }

// Euclidean returns the l2 metric used throughout the paper's
// experiments.
func Euclidean() Metric { return metric.Euclidean{} }

// Manhattan returns the l1 metric.
func Manhattan() Metric { return metric.Manhattan{} }

// Chebyshev returns the l∞ metric.
func Chebyshev() Metric { return metric.Chebyshev{} }

// Minkowski returns the lp metric for p >= 1 (it panics for p < 1, which
// is not a metric).
func Minkowski(p float64) Metric { return metric.NewMinkowski(p) }

// Angular returns the angle-between-vectors metric (a true metric on the
// unit sphere, unlike raw cosine "distance").
func Angular() Metric { return metric.Angular{} }

// BruteForce answers every query exactly with the tiled BF(Q,X)
// matrix-matrix primitive — no index, one pass over the database shared by
// the whole query block. It is the baseline the RBC indexes are measured
// against and the right tool for one-off batches too small to amortize an
// index build. Distances may differ from the per-query scan in the last
// ulps for Euclidean (the kernel reassociates the summation); exact
// duplicates still tie toward the lower id.
func BruteForce(queries, db *Dataset, m Metric) []Result {
	rs := bruteforce.SearchFast(queries, db, m, nil)
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// BruteForceK is the k-NN form of BruteForce; results are sorted by
// ascending distance, ties toward the lower id.
func BruteForceK(queries, db *Dataset, k int, m Metric) [][]Neighbor {
	return bruteforce.SearchKFast(queries, db, k, m, nil)
}

// Neighbor is a k-NN result entry: database id and distance.
type Neighbor = par.Neighbor

// Searcher is the single-query surface shared by every index backend;
// see internal/search for the batch query plane it anchors.
type Searcher = search.Searcher

// BatchSearcher adds the batch-first entry point KNNBatch, which answers
// a whole query block at once (one tiled BF(Q,R) front half plus grouped
// list scans, instead of per-query sweeps). Exact and OneShot implement
// it natively; KNNBatch(queries, k) is bit-identical to calling KNN per
// row, only faster.
type BatchSearcher = search.BatchSearcher

// Compile-time proof that the public index types are batch-first.
var (
	_ BatchSearcher = (*Exact)(nil)
	_ BatchSearcher = (*OneShot)(nil)
)

// BuildExact constructs the exact-search index over db.
func BuildExact(db *Dataset, m Metric, p ExactParams) (*Exact, error) {
	return core.BuildExact(db, m, p)
}

// BuildOneShot constructs the one-shot index over db.
func BuildOneShot(db *Dataset, m Metric, p OneShotParams) (*OneShot, error) {
	return core.BuildOneShot(db, m, p)
}

// LoadExact restores an index saved with (*Exact).Save, reattaching it to
// the database and metric it was built from.
func LoadExact(r io.Reader, db *Dataset, m Metric) (*Exact, error) {
	return core.LoadExact(r, db, m)
}

// LoadOneShot restores an index saved with (*OneShot).Save.
func LoadOneShot(r io.Reader, db *Dataset, m Metric) (*OneShot, error) {
	return core.LoadOneShot(r, db, m)
}

// DefaultNumReps returns the paper's standard representative count
// (≈ √n) for a database of n points.
func DefaultNumReps(n int) int { return core.DefaultNumReps(n) }

// AutoTuneResult reports a representative-count search; see
// core.AutoTuneExact.
type AutoTuneResult = core.AutoTuneResult

// AutoTuneExact selects NumReps for an exact index by measuring work on
// probe queries over a grid around √n (Appendix C of the paper shows the
// curve is forgiving, so a coarse grid suffices).
func AutoTuneExact(db *Dataset, m Metric, probes *Dataset, seed int64) (AutoTuneResult, error) {
	return core.AutoTuneExact(db, m, probes, seed)
}

// AutoTuneOneShot selects NumReps = S for a one-shot index subject to a
// recall target measured on probe queries.
func AutoTuneOneShot(db *Dataset, m Metric, probes *Dataset, targetRecall float64, seed int64) (AutoTuneResult, error) {
	return core.AutoTuneOneShot(db, m, probes, targetRecall, seed)
}
